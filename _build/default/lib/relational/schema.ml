type t = {
  name : string;
  attributes : Attribute.t list;
  key : string list;
}

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

let make ~name ~attributes ~key =
  if name = "" then Error "schema: empty relation name"
  else if attributes = [] then
    Error (Fmt.str "schema %s: no attributes" name)
  else
    let names = List.map (fun (a : Attribute.t) -> a.name) attributes in
    match find_dup names with
    | Some d -> Error (Fmt.str "schema %s: duplicate attribute %s" name d)
    | None ->
        if key = [] then Error (Fmt.str "schema %s: empty key" name)
        else (
          match find_dup key with
          | Some d -> Error (Fmt.str "schema %s: duplicate key attribute %s" name d)
          | None -> (
              match List.find_opt (fun k -> not (List.mem k names)) key with
              | Some k ->
                  Error (Fmt.str "schema %s: key attribute %s not declared" name k)
              | None -> Ok { name; attributes; key }))

let make_exn ~name ~attributes ~key =
  match make ~name ~attributes ~key with
  | Ok s -> s
  | Error e -> invalid_arg e

let attribute_names s = List.map (fun (a : Attribute.t) -> a.name) s.attributes
let key_attributes s = s.key

let nonkey_attributes s =
  List.filter (fun n -> not (List.mem n s.key)) (attribute_names s)

let mem s n = List.exists (fun (a : Attribute.t) -> a.name = n) s.attributes

let find s n = List.find_opt (fun (a : Attribute.t) -> a.name = n) s.attributes

let domain_of s n = Option.map (fun (a : Attribute.t) -> a.domain) (find s n)

let is_key_attr s n = List.mem n s.key
let arity s = List.length s.attributes

let project s keep =
  match List.find_opt (fun n -> not (mem s n)) keep with
  | Some n -> Error (Fmt.str "project %s: unknown attribute %s" s.name n)
  | None ->
      let attributes =
        List.filter (fun (a : Attribute.t) -> List.mem a.name keep) s.attributes
      in
      let key_kept = List.filter (fun k -> List.mem k keep) s.key in
      let key =
        if List.for_all (fun k -> List.mem k keep) s.key then key_kept
        else List.map (fun (a : Attribute.t) -> a.name) attributes
      in
      make ~name:s.name ~attributes ~key

let rename s name = { s with name }

let equal a b =
  a.name = b.name && a.key = b.key
  && List.length a.attributes = List.length b.attributes
  && List.for_all2 Attribute.equal a.attributes b.attributes

let pp ppf s =
  Fmt.pf ppf "@[<h>%s(%a) key={%a}@]" s.name
    Fmt.(list ~sep:(any ", ") Attribute.pp)
    s.attributes
    Fmt.(list ~sep:(any ", ") string)
    s.key
