type literal =
  | L_null
  | L_int of int
  | L_float of float
  | L_str of string
  | L_bool of bool

type sexpr =
  | E_attr of string
  | E_lit of literal
  | E_add of sexpr * sexpr
  | E_sub of sexpr * sexpr
  | E_mul of sexpr * sexpr
  | E_div of sexpr * sexpr
  | E_mod of sexpr * sexpr
  | E_neg of sexpr

type condition =
  | C_true
  | C_cmp of sexpr * Predicate.comparison * sexpr
  | C_is_null of string * bool
  | C_and of condition * condition
  | C_or of condition * condition
  | C_not of condition

type select_item =
  | Item_attr of string * string option
  | Item_agg of string * string option * string option

type statement =
  | Create_table of {
      name : string;
      columns : (string * string) list;
      key : string list;
    }
  | Drop_table of string
  | Insert of {
      table : string;
      columns : string list;
      values : literal list;
    }
  | Delete of { table : string; where : condition }
  | Update of {
      table : string;
      assignments : (string * sexpr) list;
      where : condition;
    }
  | Select of {
      projection : select_item list option;
      from : (string * string option) list;
      where : condition;
      group_by : string list;
      having : condition;
      order_by : (string * bool) list;
      limit : int option;
    }

let value_of_literal = function
  | L_null -> Value.Null
  | L_int i -> Value.Int i
  | L_float f -> Value.Float f
  | L_str s -> Value.Str s
  | L_bool b -> Value.Bool b

let pp_literal ppf l = Value.pp ppf (value_of_literal l)

let rec pp_sexpr ppf = function
  | E_attr a -> Fmt.string ppf a
  | E_lit l -> pp_literal ppf l
  | E_add (x, y) -> Fmt.pf ppf "(%a + %a)" pp_sexpr x pp_sexpr y
  | E_sub (x, y) -> Fmt.pf ppf "(%a - %a)" pp_sexpr x pp_sexpr y
  | E_mul (x, y) -> Fmt.pf ppf "(%a * %a)" pp_sexpr x pp_sexpr y
  | E_div (x, y) -> Fmt.pf ppf "(%a / %a)" pp_sexpr x pp_sexpr y
  | E_mod (x, y) -> Fmt.pf ppf "(%a %% %a)" pp_sexpr x pp_sexpr y
  | E_neg x -> Fmt.pf ppf "(- %a)" pp_sexpr x

let rec pp_condition ppf = function
  | C_true -> Fmt.string ppf "true"
  | C_cmp (a, op, b) ->
      Fmt.pf ppf "%a %a %a" pp_sexpr a Predicate.pp_comparison op pp_sexpr b
  | C_is_null (a, false) -> Fmt.pf ppf "%s is null" a
  | C_is_null (a, true) -> Fmt.pf ppf "%s is not null" a
  | C_and (a, b) -> Fmt.pf ppf "(%a and %a)" pp_condition a pp_condition b
  | C_or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_condition a pp_condition b
  | C_not a -> Fmt.pf ppf "(not %a)" pp_condition a

let pp_statement ppf = function
  | Create_table { name; columns; key } ->
      let pp_col ppf (c, d) = Fmt.pf ppf "%s %s" c d in
      Fmt.pf ppf "create table %s (%a) key (%a)" name
        Fmt.(list ~sep:(any ", ") pp_col)
        columns
        Fmt.(list ~sep:(any ", ") string)
        key
  | Drop_table n -> Fmt.pf ppf "drop table %s" n
  | Insert { table; columns; values } ->
      Fmt.pf ppf "insert into %s (%a) values (%a)" table
        Fmt.(list ~sep:(any ", ") string)
        columns
        Fmt.(list ~sep:(any ", ") pp_literal)
        values
  | Delete { table; where } ->
      Fmt.pf ppf "delete from %s where %a" table pp_condition where
  | Update { table; assignments; where } ->
      let pp_a ppf (a, e) = Fmt.pf ppf "%s = %a" a pp_sexpr e in
      Fmt.pf ppf "update %s set %a where %a" table
        Fmt.(list ~sep:(any ", ") pp_a)
        assignments pp_condition where
  | Select { projection; from; where; group_by; having; order_by; limit } ->
      let pp_from ppf (t, alias) =
        match alias with
        | None -> Fmt.string ppf t
        | Some a -> Fmt.pf ppf "%s as %s" t a
      in
      let pp_item ppf = function
        | Item_attr (a, alias) ->
            Fmt.pf ppf "%s%a" a
              Fmt.(option (any " as " ++ string))
              alias
        | Item_agg (f, arg, alias) ->
            Fmt.pf ppf "%s(%s)%a" f
              (Option.value arg ~default:"*")
              Fmt.(option (any " as " ++ string))
              alias
      in
      let pp_order ppf (a, asc) =
        Fmt.pf ppf "%s%s" a (if asc then "" else " desc")
      in
      Fmt.pf ppf "select %a from %a where %a%a%a%a%a"
        Fmt.(option ~none:(any "*") (list ~sep:(any ", ") pp_item))
        projection
        Fmt.(list ~sep:(any ", ") pp_from)
        from pp_condition where
        Fmt.(
          if group_by = [] then nop
          else any " group by " ++ using (fun _ -> group_by) (list ~sep:(any ", ") string))
        ()
        Fmt.(
          match having with
          | C_true -> nop
          | h -> any " having " ++ using (fun _ -> h) pp_condition)
        ()
        Fmt.(
          if order_by = [] then nop
          else any " order by " ++ using (fun _ -> order_by) (list ~sep:(any ", ") pp_order))
        ()
        Fmt.(option (any " limit " ++ int))
        limit
