(** Atomic values stored in relations.

    The domain system is deliberately small: integers, floats, strings,
    booleans, and [Null]. [Null] is a first-class value used by the
    reference-connection integrity rules of the structural model (a
    referencing attribute may be nullified instead of deleted). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** Domain (type) of a value. [Null] inhabits every domain. *)
type domain =
  | DInt
  | DFloat
  | DStr
  | DBool

val compare : t -> t -> int
(** Total order: [Null] < [Bool] < [Int] < [Float] < [Str]; ints and
    floats compare numerically within their constructors. *)

val equal : t -> t -> bool

val is_null : t -> bool

val domain_of : t -> domain option
(** [domain_of v] is [None] for [Null], [Some d] otherwise. *)

val conforms : domain -> t -> bool
(** [conforms d v] holds when [v] is [Null] or belongs to [d]. *)

val domain_name : domain -> string

val domain_of_name : string -> domain option
(** Inverse of {!domain_name}; recognizes ["int"], ["float"], ["string"],
    ["bool"] (case-insensitive). *)

val pp : Format.formatter -> t -> unit
(** Human-readable form: strings are quoted, [Null] prints as [null]. *)

val pp_plain : Format.formatter -> t -> unit
(** Unquoted form used in table cells and instance renderings. *)

val pp_domain : Format.formatter -> domain -> unit

val to_string : t -> string
(** [to_string v] is [Fmt.str "%a" pp v]. *)

val float_to_string : float -> string
(** Shortest decimal rendering that parses back to the same float. *)

val parse : domain -> string -> (t, string) result
(** Parse a literal of the given domain; ["null"] parses to [Null] in any
    domain. Used by the SQL-ish DML and the CSV loader. *)
