(** Tokenizer for the small SQL-like DML (see {!Sql}). *)

type token =
  | Ident of string  (** bare or dotted identifier (also [#] for node copies), lowercased keywords excluded *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string  (** single-quoted, [''] escapes a quote *)
  | Kw of string  (** keyword, lowercase: select, from, where, ... *)
  | Comma
  | Lparen
  | Rparen
  | Lbracket  (** used by the view-object query language, not by SQL *)
  | Rbracket
  | Star
  | Semicolon
  | Op of string  (** =, <>, <, <=, >, >=, +, -, /, % *)
  | Eof

val equal_token : token -> token -> bool
val pp_token : Format.formatter -> token -> unit

val tokenize : string -> (token list, string) result
(** Always ends with [Eof] on success. *)
