lib/relational/table.ml: Algebra Fmt List Relation Schema String Tuple Value
