lib/relational/sql_lexer.ml: Buffer Float Fmt List String
