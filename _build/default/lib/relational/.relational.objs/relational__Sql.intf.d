lib/relational/sql.mli: Algebra Database Format Predicate Sql_ast
