lib/relational/database.ml: Fmt List Map Op Relation Result Schema String
