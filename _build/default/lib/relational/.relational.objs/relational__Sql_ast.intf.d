lib/relational/sql_ast.mli: Format Predicate Value
