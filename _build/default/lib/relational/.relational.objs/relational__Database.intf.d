lib/relational/database.mli: Format Op Relation Schema Tuple Value
