lib/relational/sql_parser.ml: Fmt List Predicate Result Sql_ast Sql_lexer String
