lib/relational/tuple.ml: Fmt List Map Schema String Value
