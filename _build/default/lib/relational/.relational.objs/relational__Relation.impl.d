lib/relational/relation.ml: Fmt List Map Option Predicate Result Schema String Tuple Value
