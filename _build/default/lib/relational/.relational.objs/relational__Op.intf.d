lib/relational/op.mli: Format Tuple Value
