lib/relational/sexp.ml: Buffer Char Fmt List String
