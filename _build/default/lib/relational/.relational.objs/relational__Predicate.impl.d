lib/relational/predicate.ml: Float Fmt List Tuple Value
