lib/relational/transaction.mli: Database Format Op
