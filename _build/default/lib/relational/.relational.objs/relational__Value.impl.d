lib/relational/value.ml: Bool Float Fmt Int Printf String
