lib/relational/transaction.ml: Database Fmt Op
