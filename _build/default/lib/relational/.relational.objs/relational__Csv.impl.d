lib/relational/csv.ml: Buffer Fmt List Option Relation Result Schema String Tuple Value
