lib/relational/schema.mli: Attribute Format Value
