lib/relational/op.ml: Fmt List Tuple Value
