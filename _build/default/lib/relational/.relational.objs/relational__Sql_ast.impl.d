lib/relational/sql_ast.ml: Fmt Option Predicate Value
