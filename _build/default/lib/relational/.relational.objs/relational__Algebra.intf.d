lib/relational/algebra.mli: Database Format Predicate Tuple
