lib/relational/algebra.ml: Database Fmt List Option Predicate Relation Result Schema String Tuple Value
