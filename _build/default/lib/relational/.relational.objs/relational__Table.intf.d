lib/relational/table.mli: Algebra Relation Tuple
