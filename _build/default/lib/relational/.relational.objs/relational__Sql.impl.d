lib/relational/sql.ml: Algebra Attribute Database Fmt List Option Predicate Relation Result Schema Sql_ast Sql_parser String Table Tuple Value
