lib/relational/schema.ml: Attribute Fmt List Option
