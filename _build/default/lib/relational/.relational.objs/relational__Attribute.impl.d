lib/relational/attribute.ml: Fmt Stdlib String Value
