module SMap = Map.Make (String)

type t = { relations : Relation.t SMap.t }

type error =
  | Unknown_relation of string
  | Relation_exists of string
  | Relation_error of string * Relation.error

let pp_error ppf = function
  | Unknown_relation r -> Fmt.pf ppf "unknown relation %s" r
  | Relation_exists r -> Fmt.pf ppf "relation %s already exists" r
  | Relation_error (r, e) -> Fmt.pf ppf "%s: %a" r Relation.pp_error e

let error_to_string e = Fmt.str "%a" pp_error e

let empty = { relations = SMap.empty }

let create_relation db schema =
  let n = schema.Schema.name in
  if SMap.mem n db.relations then Error (Relation_exists n)
  else Ok { relations = SMap.add n (Relation.empty schema) db.relations }

let create_relation_exn db schema =
  match create_relation db schema with
  | Ok db -> db
  | Error e -> invalid_arg (error_to_string e)

let drop_relation db n =
  if SMap.mem n db.relations then
    Ok { relations = SMap.remove n db.relations }
  else Error (Unknown_relation n)

let relation db n =
  match SMap.find_opt n db.relations with
  | Some r -> Ok r
  | None -> Error (Unknown_relation n)

let relation_exn db n =
  match relation db n with
  | Ok r -> r
  | Error e -> invalid_arg (error_to_string e)

let schema_of db n = Result.map Relation.schema (relation db n)

let mem_relation db n = SMap.mem n db.relations
let relation_names db = List.map fst (SMap.bindings db.relations)

let with_relation db n f =
  match relation db n with
  | Error _ as e -> e
  | Ok r -> (
      match f r with
      | Ok r' -> Ok { relations = SMap.add n r' db.relations }
      | Error e -> Error (Relation_error (n, e)))

let create_index db n attrs =
  with_relation db n (fun r -> Relation.create_index r attrs)

let insert db n t = with_relation db n (fun r -> Relation.insert r t)
let delete db n k = with_relation db n (fun r -> Relation.delete_key r k)

let replace db n ~old_key t =
  with_relation db n (fun r -> Relation.replace r ~old_key t)

let apply db = function
  | Op.Insert (n, t) -> insert db n t
  | Op.Delete (n, k) -> delete db n k
  | Op.Replace (n, k, t) -> replace db n ~old_key:k t

let apply_all db ops =
  let rec go db = function
    | [] -> Ok db
    | op :: rest -> (
        match apply db op with
        | Ok db' -> go db' rest
        | Error e -> Error (e, op))
  in
  go db ops

let total_tuples db =
  SMap.fold (fun _ r acc -> acc + Relation.cardinality r) db.relations 0

let equal a b = SMap.equal Relation.equal a.relations b.relations

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:(any "@,@,") Relation.pp)
    (List.map snd (SMap.bindings db.relations))
