type comparison =
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq

type scalar =
  | S_attr of string
  | S_const of Value.t
  | S_add of scalar * scalar
  | S_sub of scalar * scalar
  | S_mul of scalar * scalar
  | S_div of scalar * scalar
  | S_mod of scalar * scalar
  | S_neg of scalar
  | S_concat of scalar * scalar

type t =
  | True
  | False
  | Cmp of string * comparison * Value.t
  | Cmp_attr of string * comparison * string
  | Cmp_scalar of scalar * comparison * scalar
  | Is_null of string
  | Not_null of string
  | And of t * t
  | Or of t * t
  | Not of t

(* SQL-flavoured arithmetic: Null propagates, int op int = int, float
   promotes, mismatches and division by zero collapse to Null. *)
let arith fi ff a b =
  match a, b with
  | Value.Int x, Value.Int y -> (
      match fi x y with Some v -> Value.Int v | None -> Value.Null)
  | Value.Int x, Value.Float y -> Value.Float (ff (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (ff x (float_of_int y))
  | Value.Float x, Value.Float y -> Value.Float (ff x y)
  | (Value.Null | Value.Str _ | Value.Bool _ | Value.Int _ | Value.Float _), _
    ->
      Value.Null

let rec eval_scalar tup = function
  | S_attr a -> Tuple.get tup a
  | S_const v -> v
  | S_add (x, y) ->
      arith (fun a b -> Some (a + b)) ( +. ) (eval_scalar tup x) (eval_scalar tup y)
  | S_sub (x, y) ->
      arith (fun a b -> Some (a - b)) ( -. ) (eval_scalar tup x) (eval_scalar tup y)
  | S_mul (x, y) ->
      arith (fun a b -> Some (a * b)) ( *. ) (eval_scalar tup x) (eval_scalar tup y)
  | S_div (x, y) ->
      arith
        (fun a b -> if b = 0 then None else Some (a / b))
        (fun a b -> a /. b)
        (eval_scalar tup x) (eval_scalar tup y)
  | S_mod (x, y) ->
      arith
        (fun a b -> if b = 0 then None else Some (a mod b))
        Float.rem (eval_scalar tup x) (eval_scalar tup y)
  | S_neg x -> (
      match eval_scalar tup x with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null | Value.Str _ | Value.Bool _ -> Value.Null)
  | S_concat (x, y) -> (
      match eval_scalar tup x, eval_scalar tup y with
      | Value.Str a, Value.Str b -> Value.Str (a ^ b)
      | _, _ -> Value.Null)

let compare_values op v1 v2 =
  if Value.is_null v1 || Value.is_null v2 then false
  else
    let c = Value.compare v1 v2 in
    match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Leq -> c <= 0
    | Gt -> c > 0
    | Geq -> c >= 0

let rec eval p t =
  match p with
  | True -> true
  | False -> false
  | Cmp (a, op, v) -> compare_values op (Tuple.get t a) v
  | Cmp_attr (a, op, b) -> compare_values op (Tuple.get t a) (Tuple.get t b)
  | Cmp_scalar (x, op, y) ->
      compare_values op (eval_scalar t x) (eval_scalar t y)
  | Is_null a -> Value.is_null (Tuple.get t a)
  | Not_null a -> not (Value.is_null (Tuple.get t a))
  | And (p1, p2) -> eval p1 t && eval p2 t
  | Or (p1, p2) -> eval p1 t || eval p2 t
  | Not p1 -> not (eval p1 t)

let ( &&& ) p1 p2 =
  match p1, p2 with
  | True, p | p, True -> p
  | False, _ | _, False -> False
  | _ -> And (p1, p2)

let ( ||| ) p1 p2 =
  match p1, p2 with
  | False, p | p, False -> p
  | True, _ | _, True -> True
  | _ -> Or (p1, p2)

let eq a v = Cmp (a, Eq, v)
let eq_str a s = Cmp (a, Eq, Value.Str s)
let eq_int a i = Cmp (a, Eq, Value.Int i)
let lt_int a i = Cmp (a, Lt, Value.Int i)
let gt_int a i = Cmp (a, Gt, Value.Int i)

let conj ps = List.fold_left ( &&& ) True ps

let rec scalar_attributes acc = function
  | S_attr a -> if List.mem a acc then acc else a :: acc
  | S_const _ -> acc
  | S_add (x, y) | S_sub (x, y) | S_mul (x, y) | S_div (x, y) | S_mod (x, y)
  | S_concat (x, y) ->
      scalar_attributes (scalar_attributes acc x) y
  | S_neg x -> scalar_attributes acc x

let attributes p =
  let rec go acc = function
    | True | False -> acc
    | Cmp (a, _, _) | Is_null a | Not_null a ->
        if List.mem a acc then acc else a :: acc
    | Cmp_attr (a, _, b) ->
        let acc = if List.mem a acc then acc else a :: acc in
        if List.mem b acc then acc else b :: acc
    | Cmp_scalar (x, _, y) -> scalar_attributes (scalar_attributes acc x) y
    | And (p1, p2) | Or (p1, p2) -> go (go acc p1) p2
    | Not p1 -> go acc p1
  in
  List.rev (go [] p)

let matches_tuple t =
  conj
    (List.map
       (fun (n, v) -> if Value.is_null v then Is_null n else Cmp (n, Eq, v))
       (Tuple.bindings t))

let pp_comparison ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "="
    | Neq -> "<>"
    | Lt -> "<"
    | Leq -> "<="
    | Gt -> ">"
    | Geq -> ">=")

let rec pp_scalar ppf = function
  | S_attr a -> Fmt.string ppf a
  | S_const v -> Value.pp ppf v
  | S_add (x, y) -> Fmt.pf ppf "(%a + %a)" pp_scalar x pp_scalar y
  | S_sub (x, y) -> Fmt.pf ppf "(%a - %a)" pp_scalar x pp_scalar y
  | S_mul (x, y) -> Fmt.pf ppf "(%a * %a)" pp_scalar x pp_scalar y
  | S_div (x, y) -> Fmt.pf ppf "(%a / %a)" pp_scalar x pp_scalar y
  | S_mod (x, y) -> Fmt.pf ppf "(%a %% %a)" pp_scalar x pp_scalar y
  | S_neg x -> Fmt.pf ppf "(- %a)" pp_scalar x
  | S_concat (x, y) -> Fmt.pf ppf "(%a || %a)" pp_scalar x pp_scalar y

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (a, op, v) -> Fmt.pf ppf "%s %a %a" a pp_comparison op Value.pp v
  | Cmp_attr (a, op, b) -> Fmt.pf ppf "%s %a %s" a pp_comparison op b
  | Cmp_scalar (x, op, y) ->
      Fmt.pf ppf "%a %a %a" pp_scalar x pp_comparison op pp_scalar y
  | Is_null a -> Fmt.pf ppf "%s is null" a
  | Not_null a -> Fmt.pf ppf "%s is not null" a
  | And (p1, p2) -> Fmt.pf ppf "(%a and %a)" pp p1 pp p2
  | Or (p1, p2) -> Fmt.pf ppf "(%a or %a)" pp p1 pp p2
  | Not p1 -> Fmt.pf ppf "(not %a)" pp p1
