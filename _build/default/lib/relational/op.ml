type t =
  | Insert of string * Tuple.t
  | Delete of string * Value.t list
  | Replace of string * Value.t list * Tuple.t

let relation = function
  | Insert (r, _) | Delete (r, _) | Replace (r, _, _) -> r

let is_insert = function Insert _ -> true | Delete _ | Replace _ -> false
let is_delete = function Delete _ -> true | Insert _ | Replace _ -> false
let is_replace = function Replace _ -> true | Insert _ | Delete _ -> false

let equal a b =
  match a, b with
  | Insert (r1, t1), Insert (r2, t2) -> r1 = r2 && Tuple.equal t1 t2
  | Delete (r1, k1), Delete (r2, k2) ->
      r1 = r2 && List.compare Value.compare k1 k2 = 0
  | Replace (r1, k1, t1), Replace (r2, k2, t2) ->
      r1 = r2 && List.compare Value.compare k1 k2 = 0 && Tuple.equal t1 t2
  | (Insert _ | Delete _ | Replace _), _ -> false

let pp_key = Fmt.(list ~sep:(any ", ") Value.pp)

let pp ppf = function
  | Insert (r, t) -> Fmt.pf ppf "INSERT %s %a" r Tuple.pp t
  | Delete (r, k) -> Fmt.pf ppf "DELETE %s key=(%a)" r pp_key k
  | Replace (r, k, t) -> Fmt.pf ppf "REPLACE %s key=(%a) with %a" r pp_key k Tuple.pp t

let pp_list ppf ops =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) ops
