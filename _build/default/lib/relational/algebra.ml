type agg_func =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type aggregate = {
  func : agg_func;
  attr : string option;
  output : string;
}

type expr =
  | Base of string
  | Select of Predicate.t * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr
  | Qualify of string * expr
  | Product of expr * expr
  | Join of (string * string) list * expr * expr
  | Natural_join of expr * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Intersect of expr * expr
  | Group of string list * aggregate list * expr
  | Order of (string * bool) list * expr
  | Take of int * expr

type rset = {
  attrs : string list;
  rows : Tuple.t list;
}

let cardinality rs = List.length rs.rows

let select p e = Select (p, e)
let project attrs e = Project (attrs, e)
let join pairs l r = Join (pairs, l, r)
let qualify q e = Qualify (q, e)

let count_all output = { func = Count; attr = None; output }
let agg func attr ~output = { func; attr = Some attr; output }

let agg_func_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let agg_func_of_name s =
  match String.lowercase_ascii s with
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let ( let* ) = Result.bind

let dedup rows =
  let rec go seen acc = function
    | [] -> List.rev acc
    | t :: rest ->
        if List.exists (Tuple.equal t) seen then go seen acc rest
        else go (t :: seen) (t :: acc) rest
  in
  go [] [] rows

let check_disjoint op l r =
  match List.find_opt (fun a -> List.mem a r) l with
  | Some a -> Error (Fmt.str "%s: attribute collision on %s" op a)
  | None -> Ok ()

let check_agg_output_names keys aggs =
  let outputs = List.map (fun a -> a.output) aggs in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  match dup (keys @ outputs) with
  | Some n -> Error (Fmt.str "group: duplicate output attribute %s" n)
  | None -> Ok ()

let rec attributes_of db = function
  | Base n -> Result.map_error Database.error_to_string
      (Result.map Schema.attribute_names (Database.schema_of db n))
  | Select (_, e) -> attributes_of db e
  | Project (attrs, e) ->
      let* inner = attributes_of db e in
      (match List.find_opt (fun a -> not (List.mem a inner)) attrs with
      | Some a -> Error (Fmt.str "project: unknown attribute %s" a)
      | None -> Ok attrs)
  | Rename (renames, e) ->
      let* inner = attributes_of db e in
      let rename a =
        match List.assoc_opt a renames with Some a' -> a' | None -> a
      in
      Ok (List.map rename inner)
  | Qualify (q, e) ->
      let* inner = attributes_of db e in
      Ok (List.map (fun a -> q ^ "." ^ a) inner)
  | Product (l, r) | Join (_, l, r) ->
      let* la = attributes_of db l in
      let* ra = attributes_of db r in
      let* () = check_disjoint "product/join" la ra in
      Ok (la @ ra)
  | Natural_join (l, r) ->
      let* la = attributes_of db l in
      let* ra = attributes_of db r in
      Ok (la @ List.filter (fun a -> not (List.mem a la)) ra)
  | Union (l, _) | Diff (l, _) | Intersect (l, _) -> attributes_of db l
  | Group (keys, aggs, e) ->
      let* inner = attributes_of db e in
      let* () = check_agg_output_names keys aggs in
      (match List.find_opt (fun k -> not (List.mem k inner)) keys with
      | Some k -> Error (Fmt.str "group: unknown key attribute %s" k)
      | None -> Ok (keys @ List.map (fun a -> a.output) aggs))
  | Order (_, e) -> attributes_of db e
  | Take (_, e) -> attributes_of db e

(* Compute one aggregate over the rows of one group. *)
let compute_aggregate rows a =
  let values attr =
    List.filter
      (fun v -> not (Value.is_null v))
      (List.map (fun r -> Tuple.get r attr) rows)
  in
  let numeric op_name attr =
    let vs = values attr in
    List.fold_left
      (fun acc v ->
        let* (sum, n, all_int) = acc in
        match v with
        | Value.Int i -> Ok (sum +. float_of_int i, n + 1, all_int)
        | Value.Float f -> Ok (sum +. f, n + 1, false)
        | Value.Str _ | Value.Bool _ | Value.Null ->
            Error (Fmt.str "%s(%s): non-numeric value %a" op_name attr Value.pp v))
      (Ok (0., 0, true))
      vs
  in
  match a.func, a.attr with
  | Count, None -> Ok (Value.Int (List.length rows))
  | Count, Some attr -> Ok (Value.Int (List.length (values attr)))
  | (Sum | Avg | Min | Max), None ->
      Error (Fmt.str "%s requires an attribute" (agg_func_name a.func))
  | Sum, Some attr ->
      let* sum, n, all_int = numeric "sum" attr in
      if n = 0 then Ok Value.Null
      else if all_int then Ok (Value.Int (int_of_float sum))
      else Ok (Value.Float sum)
  | Avg, Some attr ->
      let* sum, n, _ = numeric "avg" attr in
      if n = 0 then Ok Value.Null else Ok (Value.Float (sum /. float_of_int n))
  | Min, Some attr -> (
      match values attr with
      | [] -> Ok Value.Null
      | v :: rest ->
          Ok (List.fold_left (fun m v -> if Value.compare v m < 0 then v else m) v rest))
  | Max, Some attr -> (
      match values attr with
      | [] -> Ok Value.Null
      | v :: rest ->
          Ok (List.fold_left (fun m v -> if Value.compare v m > 0 then v else m) v rest))

let group_rows keys rows =
  (* Partition preserving first-seen group order. *)
  let tbl : (Value.t list * Tuple.t list ref) list ref = ref [] in
  List.iter
    (fun r ->
      let kv = List.map (Tuple.get r) keys in
      match
        List.find_opt (fun (k, _) -> List.compare Value.compare k kv = 0) !tbl
      with
      | Some (_, cell) -> cell := r :: !cell
      | None -> tbl := !tbl @ [ kv, ref [ r ] ])
    rows;
  List.map (fun (k, cell) -> k, List.rev !cell) !tbl

let same_attrs op la ra =
  if List.sort String.compare la = List.sort String.compare ra then Ok ()
  else Error (Fmt.str "%s: operand attribute sets differ" op)

let rec eval db e =
  match e with
  | Base n ->
      let* r =
        Result.map_error Database.error_to_string (Database.relation db n)
      in
      Ok { attrs = Schema.attribute_names (Relation.schema r);
           rows = Relation.to_list r }
  | Select (p, e1) ->
      let* rs = eval db e1 in
      (match
         List.find_opt (fun a -> not (List.mem a rs.attrs)) (Predicate.attributes p)
       with
      | Some a -> Error (Fmt.str "select: unknown attribute %s" a)
      | None -> Ok { rs with rows = List.filter (Predicate.eval p) rs.rows })
  | Project (attrs, e1) ->
      let* rs = eval db e1 in
      (match List.find_opt (fun a -> not (List.mem a rs.attrs)) attrs with
      | Some a -> Error (Fmt.str "project: unknown attribute %s" a)
      | None ->
          Ok { attrs; rows = dedup (List.map (Tuple.project_null attrs) rs.rows) })
  | Rename (renames, e1) ->
      let* rs = eval db e1 in
      let rename a =
        match List.assoc_opt a renames with Some a' -> a' | None -> a
      in
      Ok { attrs = List.map rename rs.attrs;
           rows = List.map (Tuple.rename_attrs renames) rs.rows }
  | Qualify (q, e1) ->
      let* rs = eval db e1 in
      let renames = List.map (fun a -> a, q ^ "." ^ a) rs.attrs in
      Ok { attrs = List.map snd renames;
           rows = List.map (Tuple.rename_attrs renames) rs.rows }
  | Product (l, r) ->
      let* ls = eval db l in
      let* rs = eval db r in
      let* () = check_disjoint "product" ls.attrs rs.attrs in
      let rows =
        List.concat_map
          (fun lt -> List.map (fun rt -> Tuple.union lt rt) rs.rows)
          ls.rows
      in
      Ok { attrs = ls.attrs @ rs.attrs; rows }
  | Join (pairs, l, r) ->
      let* ls = eval db l in
      let* rs = eval db r in
      let* () = check_disjoint "join" ls.attrs rs.attrs in
      let la = List.map fst pairs and ra = List.map snd pairs in
      (match
         ( List.find_opt (fun a -> not (List.mem a ls.attrs)) la,
           List.find_opt (fun a -> not (List.mem a rs.attrs)) ra )
       with
      | Some a, _ | _, Some a -> Error (Fmt.str "join: unknown attribute %s" a)
      | None, None ->
          let rows =
            List.concat_map
              (fun lt ->
                List.filter_map
                  (fun rt ->
                    if Tuple.matches ~on:(la, ra) lt rt then
                      Some (Tuple.union lt rt)
                    else None)
                  rs.rows)
              ls.rows
          in
          Ok { attrs = ls.attrs @ rs.attrs; rows })
  | Natural_join (l, r) ->
      let* ls = eval db l in
      let* rs = eval db r in
      let shared = List.filter (fun a -> List.mem a rs.attrs) ls.attrs in
      let rows =
        List.concat_map
          (fun lt ->
            List.filter_map
              (fun rt ->
                if Tuple.matches ~on:(shared, shared) lt rt then
                  Some (Tuple.union lt rt)
                else None)
              rs.rows)
          ls.rows
      in
      let attrs = ls.attrs @ List.filter (fun a -> not (List.mem a shared)) rs.attrs in
      Ok { attrs; rows = dedup rows }
  | Union (l, r) ->
      let* ls = eval db l in
      let* rs = eval db r in
      let* () = same_attrs "union" ls.attrs rs.attrs in
      Ok { ls with rows = dedup (ls.rows @ rs.rows) }
  | Diff (l, r) ->
      let* ls = eval db l in
      let* rs = eval db r in
      let* () = same_attrs "diff" ls.attrs rs.attrs in
      let keep t = not (List.exists (Tuple.equal_on ls.attrs t) rs.rows) in
      Ok { ls with rows = List.filter keep ls.rows }
  | Intersect (l, r) ->
      let* ls = eval db l in
      let* rs = eval db r in
      let* () = same_attrs "intersect" ls.attrs rs.attrs in
      let keep t = List.exists (Tuple.equal_on ls.attrs t) rs.rows in
      Ok { ls with rows = List.filter keep ls.rows }
  | Group (keys, aggs, e1) ->
      let* rs = eval db e1 in
      let* () = check_agg_output_names keys aggs in
      let* () =
        match List.find_opt (fun k -> not (List.mem k rs.attrs)) keys with
        | Some k -> Error (Fmt.str "group: unknown key attribute %s" k)
        | None -> (
            match
              List.find_opt
                (fun a ->
                  match a.attr with
                  | Some at -> not (List.mem at rs.attrs)
                  | None -> false)
                aggs
            with
            | Some a ->
                Error
                  (Fmt.str "group: unknown aggregate attribute %s"
                     (Option.value a.attr ~default:"?"))
            | None -> Ok ())
      in
      let groups =
        match keys, rs.rows with
        | [], [] -> [ [], [] ]  (* global aggregate over an empty input *)
        | _ -> group_rows keys rs.rows
      in
      let* rows =
        List.fold_left
          (fun acc (kv, rows) ->
            let* out = acc in
            let* bindings =
              List.fold_left
                (fun acc a ->
                  let* bs = acc in
                  let* v = compute_aggregate rows a in
                  Ok ((a.output, v) :: bs))
                (Ok []) aggs
            in
            let key_bindings = List.map2 (fun k v -> k, v) keys kv in
            Ok (out @ [ Tuple.make (key_bindings @ List.rev bindings) ]))
          (Ok []) groups
      in
      Ok { attrs = keys @ List.map (fun a -> a.output) aggs; rows }
  | Order (sort_keys, e1) ->
      let* rs = eval db e1 in
      (match
         List.find_opt (fun (k, _) -> not (List.mem k rs.attrs)) sort_keys
       with
      | Some (k, _) -> Error (Fmt.str "order: unknown attribute %s" k)
      | None ->
          let compare_rows a b =
            let rec go = function
              | [] -> 0
              | (k, asc) :: rest ->
                  let c = Value.compare (Tuple.get a k) (Tuple.get b k) in
                  if c <> 0 then if asc then c else -c else go rest
            in
            go sort_keys
          in
          Ok { rs with rows = List.stable_sort compare_rows rs.rows })
  | Take (n, e1) ->
      let* rs = eval db e1 in
      if n < 0 then Error "take: negative count"
      else Ok { rs with rows = List.filteri (fun i _ -> i < n) rs.rows }

let eval_exn db e =
  match eval db e with Ok rs -> rs | Error msg -> invalid_arg msg

let rec pp ppf = function
  | Base n -> Fmt.string ppf n
  | Select (p, e) -> Fmt.pf ppf "sigma[%a](%a)" Predicate.pp p pp e
  | Project (attrs, e) ->
      Fmt.pf ppf "pi[%a](%a)" Fmt.(list ~sep:(any ",") string) attrs pp e
  | Rename (rs, e) ->
      let pp_r ppf (a, b) = Fmt.pf ppf "%s->%s" a b in
      Fmt.pf ppf "rho[%a](%a)" Fmt.(list ~sep:(any ",") pp_r) rs pp e
  | Qualify (q, e) -> Fmt.pf ppf "qual[%s](%a)" q pp e
  | Product (l, r) -> Fmt.pf ppf "(%a x %a)" pp l pp r
  | Join (pairs, l, r) ->
      let pp_p ppf (a, b) = Fmt.pf ppf "%s=%s" a b in
      Fmt.pf ppf "(%a join[%a] %a)" pp l
        Fmt.(list ~sep:(any ",") pp_p)
        pairs pp r
  | Natural_join (l, r) -> Fmt.pf ppf "(%a njoin %a)" pp l pp r
  | Union (l, r) -> Fmt.pf ppf "(%a union %a)" pp l pp r
  | Diff (l, r) -> Fmt.pf ppf "(%a minus %a)" pp l pp r
  | Intersect (l, r) -> Fmt.pf ppf "(%a intersect %a)" pp l pp r
  | Group (keys, aggs, e) ->
      let pp_agg ppf a =
        Fmt.pf ppf "%s(%s)->%s" (agg_func_name a.func)
          (Option.value a.attr ~default:"*")
          a.output
      in
      Fmt.pf ppf "gamma[%a;%a](%a)"
        Fmt.(list ~sep:(any ",") string)
        keys
        Fmt.(list ~sep:(any ",") pp_agg)
        aggs pp e
  | Order (ks, e) ->
      let pp_k ppf (k, asc) = Fmt.pf ppf "%s%s" k (if asc then "" else " desc") in
      Fmt.pf ppf "tau[%a](%a)" Fmt.(list ~sep:(any ",") pp_k) ks pp e
  | Take (n, e) -> Fmt.pf ppf "limit[%d](%a)" n pp e
