(** A small relational algebra over the database catalog.

    The view-object query model composes an object query with the object
    structure "to obtain a relational query that can be executed against
    the database" (Section 3); this module is that executable query
    representation. The Keller baseline also materializes its SPJ views
    through it. *)

(** Aggregate functions. [Count] with [attr = None] counts rows;
    with [Some a] it counts non-null values of [a]. [Sum]/[Avg] require a
    numeric attribute (ints and floats mix; [Avg] always yields a float);
    [Min]/[Max] use the {!Value.compare} order over non-null values. All
    aggregates yield [Null] on an empty (or all-null) input. *)
type agg_func =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type aggregate = {
  func : agg_func;
  attr : string option;  (** [None] only for [Count] *)
  output : string;  (** name of the result attribute *)
}

type expr =
  | Base of string  (** named relation from the catalog *)
  | Select of Predicate.t * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr  (** (old, new) attribute renames *)
  | Qualify of string * expr
      (** [Qualify (q, e)] renames every output attribute [a] to [q ^ "." ^ a] *)
  | Product of expr * expr
  | Join of (string * string) list * expr * expr
      (** equijoin on positional (left-attr, right-attr) pairs *)
  | Natural_join of expr * expr  (** join on all shared attribute names *)
  | Union of expr * expr
  | Diff of expr * expr
  | Intersect of expr * expr
  | Group of string list * aggregate list * expr
      (** [Group (keys, aggs, e)]: partition [e]'s rows by the values of
          [keys] (empty = one global group, even when [e] is empty) and
          emit one row per group carrying the keys and the aggregates *)
  | Order of (string * bool) list * expr
      (** sort keys with [true] = ascending; later keys break ties *)
  | Take of int * expr  (** first [n] rows (SQL LIMIT) *)

(** A result set: duplicate-free list of rows with an explicit attribute
    list. Result sets are not keyed relations — a projection may drop the
    key. *)
type rset = {
  attrs : string list;
  rows : Tuple.t list;
}

val eval : Database.t -> expr -> (rset, string) result
(** Errors on unknown relations, unknown attributes, or attribute-name
    collisions in products/joins (qualify first). Rows are deduplicated
    (set semantics). *)

val eval_exn : Database.t -> expr -> rset

val cardinality : rset -> int

val select : Predicate.t -> expr -> expr
val project : string list -> expr -> expr
val join : (string * string) list -> expr -> expr -> expr
val qualify : string -> expr -> expr

val count_all : string -> aggregate
(** [count_all out] is the row-count aggregate (SQL's COUNT star) named
    [out]. *)

val agg : agg_func -> string -> output:string -> aggregate
val agg_func_name : agg_func -> string
val agg_func_of_name : string -> agg_func option

val attributes_of : Database.t -> expr -> (string list, string) result
(** Output attributes of an expression without evaluating its rows. *)

val pp : Format.formatter -> expr -> unit
