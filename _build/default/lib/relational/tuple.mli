(** Tuples: finite maps from attribute name to {!Value.t}.

    Tuples are schema-agnostic records of bindings; conformance to a
    schema is checked separately with {!conforms}, so the same tuple value
    can travel between a relation, a projection of it inside a view
    object, and an update request. *)

type t

val empty : t

val make : (string * Value.t) list -> t
(** Later bindings win on duplicate names. *)

val get : t -> string -> Value.t
(** [Null] when the attribute is absent. *)

val get_opt : t -> string -> Value.t option
val mem : t -> string -> bool
val set : t -> string -> Value.t -> t
val remove : t -> string -> t
val attributes : t -> string list
(** Attribute names in lexicographic order. *)

val bindings : t -> (string * Value.t) list
val cardinal : t -> int
val union : t -> t -> t
(** [union a b]: bindings of [b] win on conflicts. *)

val project : string list -> t -> t
(** Keep only the listed attributes (absent ones are dropped, not
    nullified). *)

val project_null : string list -> t -> t
(** Like {!project} but absent attributes appear bound to [Null], so the
    result always has exactly the requested attributes. *)

val rename_attrs : (string * string) list -> t -> t
(** [rename_attrs [(old, new); ...] t] renames bindings; unmentioned
    bindings are kept. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val equal_on : string list -> t -> t -> bool
(** Equality restricted to the given attributes ([Null] = [Null]). *)

val key_of : Schema.t -> t -> Value.t list
(** Key values in key-declaration order ([Null] for absent). *)

val values_of : string list -> t -> Value.t list

val conforms : Schema.t -> t -> (unit, string) result
(** Checks that every schema attribute is bound to a domain-conforming
    value, that no extra attributes are bound, and that no key attribute
    is [Null]. *)

val matches : on:(string list * string list) -> t -> t -> bool
(** [matches ~on:(xs1, xs2) t1 t2] — the connection-matching test of
    Def. 2.1: values of [xs1] in [t1] equal values of [xs2] in [t2]
    positionally, and none is [Null]. *)

val has_nulls_on : string list -> t -> bool

val pp : Format.formatter -> t -> unit
