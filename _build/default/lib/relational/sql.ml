open Sql_ast

type answer =
  | Rows of Algebra.rset
  | Affected of int
  | Done

let ( let* ) = Result.bind

let compile_scalar ~resolve e =
  let rec go = function
    | E_attr a ->
        let* a = resolve a in
        Ok (Predicate.S_attr a)
    | E_lit l -> Ok (Predicate.S_const (value_of_literal l))
    | E_add (x, y) -> bin (fun a b -> Predicate.S_add (a, b)) x y
    | E_sub (x, y) -> bin (fun a b -> Predicate.S_sub (a, b)) x y
    | E_mul (x, y) -> bin (fun a b -> Predicate.S_mul (a, b)) x y
    | E_div (x, y) -> bin (fun a b -> Predicate.S_div (a, b)) x y
    | E_mod (x, y) -> bin (fun a b -> Predicate.S_mod (a, b)) x y
    | E_neg x ->
        let* x = go x in
        Ok (Predicate.S_neg x)
  and bin mk x y =
    let* x = go x in
    let* y = go y in
    Ok (mk x y)
  in
  go e

let compile_condition ~resolve cond =
  let rec go = function
    | C_true -> Ok Predicate.True
    | C_is_null (a, negated) ->
        let* a = resolve a in
        Ok (if negated then Predicate.Not_null a else Predicate.Is_null a)
    | C_and (l, r) ->
        let* l = go l in
        let* r = go r in
        Ok (Predicate.And (l, r))
    | C_or (l, r) ->
        let* l = go l in
        let* r = go r in
        Ok (Predicate.Or (l, r))
    | C_not c ->
        let* c = go c in
        Ok (Predicate.Not c)
    | C_cmp (l, op, r) -> (
        (* Common shapes keep their first-class predicate forms; anything
           computed becomes a scalar comparison. *)
        match l, r with
        | E_attr a, E_lit lit ->
            let* a = resolve a in
            Ok (Predicate.Cmp (a, op, value_of_literal lit))
        | E_lit lit, E_attr a ->
            let* a = resolve a in
            let flip = function
              | Predicate.Eq -> Predicate.Eq
              | Predicate.Neq -> Predicate.Neq
              | Predicate.Lt -> Predicate.Gt
              | Predicate.Leq -> Predicate.Geq
              | Predicate.Gt -> Predicate.Lt
              | Predicate.Geq -> Predicate.Leq
            in
            Ok (Predicate.Cmp (a, flip op, value_of_literal lit))
        | E_attr a, E_attr b ->
            let* a = resolve a in
            let* b = resolve b in
            Ok (Predicate.Cmp_attr (a, op, b))
        | l, r ->
            let* l = compile_scalar ~resolve l in
            let* r = compile_scalar ~resolve r in
            Ok (Predicate.Cmp_scalar (l, op, r)))
  in
  go cond

(* Resolver for a single table: attributes may be bare or table-qualified. *)
let single_table_resolver schema table a =
  let bare =
    match String.index_opt a '.' with
    | Some i when String.sub a 0 i = table ->
        String.sub a (i + 1) (String.length a - i - 1)
    | Some _ -> a
    | None -> a
  in
  if Schema.mem schema bare then Ok bare
  else Error (Fmt.str "unknown attribute %s in table %s" a table)

let exec_create db name columns key =
  let* attributes =
    List.fold_left
      (fun acc (c, d) ->
        let* attrs = acc in
        match Value.domain_of_name d with
        | Some dom -> Ok (Attribute.make c dom :: attrs)
        | None -> Error (Fmt.str "unknown domain %s for column %s" d c))
      (Ok []) columns
  in
  let* schema = Schema.make ~name ~attributes:(List.rev attributes) ~key in
  Result.map_error Database.error_to_string (Database.create_relation db schema)

let exec_insert db table columns values =
  let* schema = Result.map_error Database.error_to_string (Database.schema_of db table) in
  let columns = if columns = [] then Schema.attribute_names schema else columns in
  if List.length columns <> List.length values then
    Error
      (Fmt.str "insert into %s: %d columns but %d values" table
         (List.length columns) (List.length values))
  else
    let tuple =
      Tuple.make (List.map2 (fun c l -> c, value_of_literal l) columns values)
    in
    Result.map_error Database.error_to_string (Database.insert db table tuple)

let matching_tuples db table where =
  let* schema = Result.map_error Database.error_to_string (Database.schema_of db table) in
  let* pred = compile_condition ~resolve:(single_table_resolver schema table) where in
  let* rel = Result.map_error Database.error_to_string (Database.relation db table) in
  Ok (schema, Relation.select pred rel)

let exec_delete db table where =
  let* schema, victims = matching_tuples db table where in
  let* db' =
    List.fold_left
      (fun acc t ->
        let* db = acc in
        Result.map_error Database.error_to_string
          (Database.delete db table (Tuple.key_of schema t)))
      (Ok db) victims
  in
  Ok (db', Affected (List.length victims))

let exec_update db table assignments where =
  let* schema, victims = matching_tuples db table where in
  let* () =
    match
      List.find_opt (fun (a, _) -> not (Schema.mem schema a)) assignments
    with
    | Some (a, _) -> Error (Fmt.str "update %s: unknown attribute %s" table a)
    | None -> Ok ()
  in
  (* Right-hand sides may reference the tuple's current values:
     UPDATE emp SET salary = salary + 10. All are evaluated against the
     original tuple before any assignment applies. *)
  let* compiled =
    List.fold_left
      (fun acc (a, e) ->
        let* cs = acc in
        let* s = compile_scalar ~resolve:(single_table_resolver schema table) e in
        Ok ((a, s) :: cs))
      (Ok []) assignments
  in
  let compiled = List.rev compiled in
  let* db' =
    List.fold_left
      (fun acc t ->
        let* db = acc in
        let t' =
          List.fold_left
            (fun t' (a, s) -> Tuple.set t' a (Predicate.eval_scalar t s))
            t compiled
        in
        Result.map_error Database.error_to_string
          (Database.replace db table ~old_key:(Tuple.key_of schema t) t'))
      (Ok db) victims
  in
  Ok (db', Affected (List.length victims))

(* SELECT: each FROM entry is qualified by its alias (or table name) when
   there are several entries; attribute references are resolved to those
   qualified names, accepting bare names when unambiguous. Aggregates and
   GROUP BY compile to {!Algebra.Group}; HAVING selects over the grouped
   output; ORDER BY and LIMIT apply last, over the output attributes. *)
let exec_select db projection from where group_by having order_by limit =
  let* entries =
    List.fold_left
      (fun acc (t, alias) ->
        let* es = acc in
        let* schema = Result.map_error Database.error_to_string (Database.schema_of db t) in
        let label = Option.value alias ~default:t in
        Ok ((label, t, schema) :: es))
      (Ok []) from
  in
  let entries = List.rev entries in
  let multi = List.length entries > 1 in
  let resolve a =
    match String.index_opt a '.' with
    | Some i ->
        let q = String.sub a 0 i in
        let bare = String.sub a (i + 1) (String.length a - i - 1) in
        (match List.find_opt (fun (l, _, _) -> l = q) entries with
        | Some (_, _, schema) when Schema.mem schema bare ->
            Ok (if multi then a else bare)
        | Some _ -> Error (Fmt.str "unknown attribute %s" a)
        | None -> Error (Fmt.str "unknown table qualifier %s" q))
    | None -> (
        let holders =
          List.filter (fun (_, _, schema) -> Schema.mem schema a) entries
        in
        match holders with
        | [ (l, _, _) ] -> Ok (if multi then l ^ "." ^ a else a)
        | [] -> Error (Fmt.str "unknown attribute %s" a)
        | _ -> Error (Fmt.str "ambiguous attribute %s" a))
  in
  let resolve_list attrs =
    List.fold_left
      (fun acc a ->
        let* rs = acc in
        let* r = resolve a in
        Ok (rs @ [ r ]))
      (Ok []) attrs
  in
  let base =
    List.map
      (fun (l, t, _) ->
        if multi then Algebra.Qualify (l, Algebra.Base t) else Algebra.Base t)
      entries
  in
  let product =
    match base with
    | [] -> assert false
    | e :: rest -> List.fold_left (fun acc e' -> Algebra.Product (acc, e')) e rest
  in
  let* pred = compile_condition ~resolve where in
  let selected = Algebra.Select (pred, product) in
  let items = projection in
  let has_aggregates =
    match items with
    | None -> false
    | Some l -> List.exists (function Item_agg _ -> true | Item_attr _ -> false) l
  in
  let* expr, output_attrs =
    if group_by = [] && not has_aggregates then
      (* Plain select-project, with optional aliases. ORDER BY may
         reference any attribute of the joined input (standard SQL), so
         ordering happens before the projection. *)
      let* ordered =
        if order_by = [] then Ok selected
        else
          let* keys =
            List.fold_left
              (fun acc (a, asc) ->
                let* ks = acc in
                let* r = resolve a in
                Ok (ks @ [ r, asc ]))
              (Ok []) order_by
          in
          Ok (Algebra.Order (keys, selected))
      in
      match items with
      | None ->
          let* attrs = Algebra.attributes_of db ordered in
          Ok (ordered, attrs)
      | Some l ->
          let* resolved_with_alias =
            List.fold_left
              (fun acc item ->
                let* rs = acc in
                match item with
                | Item_attr (a, alias) ->
                    let* r = resolve a in
                    Ok (rs @ [ r, Option.value alias ~default:a ])
                | Item_agg _ -> assert false)
              (Ok []) l
          in
          let projected =
            Algebra.Project (List.map fst resolved_with_alias, ordered)
          in
          let renames =
            List.filter_map
              (fun (r, out) -> if r = out then None else Some (r, out))
              resolved_with_alias
          in
          let expr =
            if renames = [] then projected else Algebra.Rename (renames, projected)
          in
          Ok (expr, List.map snd resolved_with_alias)
    else
      (* Aggregate query. *)
      let* keys = resolve_list group_by in
      let* items =
        match items with
        | Some l -> Ok l
        | None -> Error "aggregate queries cannot use SELECT *"
      in
      (* Synthesize output names and validate that plain attributes are
         grouping keys. *)
      let* rev_outputs, rev_aggs =
        List.fold_left
          (fun acc item ->
            let* outs, aggs = acc in
            match item with
            | Item_attr (a, alias) ->
                let* r = resolve a in
                if not (List.mem r keys) then
                  Error
                    (Fmt.str "attribute %s must appear in GROUP BY" a)
                else
                  (* grouped keys pass through; alias applied afterwards *)
                  Ok ((Option.value alias ~default:a, `Key r) :: outs, aggs)
            | Item_agg (f, arg, alias) -> (
                match Algebra.agg_func_of_name f with
                | None -> Error (Fmt.str "unknown aggregate function %s" f)
                | Some func ->
                    let* attr =
                      match arg with
                      | None -> Ok None
                      | Some a ->
                          let* r = resolve a in
                          Ok (Some r)
                    in
                    let output =
                      match alias with
                      | Some a -> a
                      | None -> (
                          match arg with
                          | None -> f
                          | Some a -> f ^ "_" ^ a)
                    in
                    let agg = { Algebra.func; attr; output } in
                    Ok ((output, `Agg) :: outs, agg :: aggs)))
          (Ok ([], []))
          items
      in
      let outputs = List.rev rev_outputs in
      let aggs = List.rev rev_aggs in
      let grouped = Algebra.Group (keys, aggs, selected) in
      (* HAVING over the grouped output (keys + aggregate outputs). *)
      let grouped_attrs = keys @ List.map (fun a -> a.Algebra.output) aggs in
      let resolve_grouped a =
        if List.mem a grouped_attrs then Ok a
        else
          let* r = resolve a in
          if List.mem r grouped_attrs then Ok r
          else Error (Fmt.str "HAVING: %s is not in the grouped output" a)
      in
      let* having_pred = compile_condition ~resolve:resolve_grouped having in
      let grouped =
        if having_pred = Predicate.True then grouped
        else Algebra.Select (having_pred, grouped)
      in
      (* Final projection to the SELECT list order, applying aliases. *)
      let final_names = List.map fst outputs in
      let picks =
        List.map (fun (out, kind) ->
            match kind with `Key r -> r | `Agg -> out)
          outputs
      in
      let projected = Algebra.Project (picks, grouped) in
      let renames =
        List.filter_map
          (fun (out, kind) ->
            match kind with
            | `Key r when r <> out -> Some (r, out)
            | `Key _ | `Agg -> None)
          outputs
      in
      let expr =
        if renames = [] then projected else Algebra.Rename (renames, projected)
      in
      Ok (expr, final_names)
  in
  (* Aggregate queries order over their output attributes (plain selects
     already ordered before projecting); then LIMIT. *)
  let* expr =
    if order_by = [] || (group_by = [] && not has_aggregates) then Ok expr
    else
      let* keys =
        List.fold_left
          (fun acc (a, asc) ->
            let* ks = acc in
            if List.mem a output_attrs then Ok (ks @ [ a, asc ])
            else
              let* r = resolve a in
              if List.mem r output_attrs then Ok (ks @ [ r, asc ])
              else Error (Fmt.str "ORDER BY: %s is not in the output" a))
          (Ok []) order_by
      in
      Ok (Algebra.Order (keys, expr))
  in
  let expr = match limit with None -> expr | Some n -> Algebra.Take (n, expr) in
  let* rset = Algebra.eval db expr in
  Ok (db, Rows rset)

let exec db = function
  | Create_table { name; columns; key } ->
      let* db = exec_create db name columns key in
      Ok (db, Done)
  | Drop_table name ->
      let* db =
        Result.map_error Database.error_to_string (Database.drop_relation db name)
      in
      Ok (db, Done)
  | Insert { table; columns; values } ->
      let* db = exec_insert db table columns values in
      Ok (db, Affected 1)
  | Delete { table; where } -> exec_delete db table where
  | Update { table; assignments; where } -> exec_update db table assignments where
  | Select { projection; from; where; group_by; having; order_by; limit } ->
      exec_select db projection from where group_by having order_by limit

let run db input =
  let* stmt = Sql_parser.parse_statement input in
  exec db stmt

let run_script db input =
  let* stmts = Sql_parser.parse_script input in
  List.fold_left
    (fun acc stmt ->
      let* db, answers = acc in
      let* db, a = exec db stmt in
      Ok (db, a :: answers))
    (Ok (db, []))
    stmts
  |> Result.map (fun (db, answers) -> db, List.rev answers)

let pp_answer ppf = function
  | Rows rs -> Fmt.pf ppf "%s" (Table.of_rset rs)
  | Affected n -> Fmt.pf ppf "%d row(s) affected" n
  | Done -> Fmt.string ppf "ok"
