(** Recursive-descent parser for the small SQL-like DML. *)

val parse_statement : string -> (Sql_ast.statement, string) result
(** Parse one statement (optional trailing [';']). *)

val parse_script : string -> (Sql_ast.statement list, string) result
(** Parse a [';']-separated sequence of statements. *)

val condition_tokens :
  Sql_lexer.token list ->
  (Sql_ast.condition * Sql_lexer.token list, string) result
(** Parse a condition from a token stream, returning the remainder —
    used by embedding languages (the view-object query language's
    node-scoped blocks). *)

val sexpr_tokens :
  Sql_lexer.token list ->
  (Sql_ast.sexpr * Sql_lexer.token list, string) result
