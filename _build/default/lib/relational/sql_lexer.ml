type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw of string
  | Comma
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Star
  | Semicolon
  | Op of string
  | Eof

let equal_token a b =
  match a, b with
  | Ident x, Ident y | Kw x, Kw y | Op x, Op y | Str_lit x, Str_lit y -> x = y
  | Int_lit x, Int_lit y -> x = y
  | Float_lit x, Float_lit y -> Float.equal x y
  | Comma, Comma | Lparen, Lparen | Rparen, Rparen | Star, Star
  | Lbracket, Lbracket | Rbracket, Rbracket
  | Semicolon, Semicolon | Eof, Eof ->
      true
  | ( Ident _ | Int_lit _ | Float_lit _ | Str_lit _ | Kw _ | Comma | Lparen
    | Rparen | Lbracket | Rbracket | Star | Semicolon | Op _ | Eof ), _ ->
      false

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "ident %s" s
  | Int_lit i -> Fmt.pf ppf "int %d" i
  | Float_lit f -> Fmt.pf ppf "float %g" f
  | Str_lit s -> Fmt.pf ppf "string %S" s
  | Kw s -> Fmt.pf ppf "keyword %s" s
  | Comma -> Fmt.string ppf ","
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Lbracket -> Fmt.string ppf "["
  | Rbracket -> Fmt.string ppf "]"
  | Star -> Fmt.string ppf "*"
  | Semicolon -> Fmt.string ppf ";"
  | Op s -> Fmt.string ppf s
  | Eof -> Fmt.string ppf "<eof>"

let keywords =
  [ "select"; "from"; "where"; "insert"; "into"; "values"; "delete"; "update";
    "set"; "and"; "or"; "not"; "is"; "null"; "true"; "false"; "create";
    "table"; "key"; "drop"; "as"; "group"; "by"; "having"; "order"; "limit";
    "asc"; "desc" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '#'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  (* A '-' directly followed by a digit is a negative literal only in
     operator position (start of input, after an operator, a comma or an
     opening bracket); after a value it is subtraction. *)
  let value_position = function
    | (Ident _ | Int_lit _ | Float_lit _ | Str_lit _ | Rparen | Rbracket
      | Kw "null" | Kw "true" | Kw "false")
      :: _ ->
        true
    | _ -> false
  in
  let rec go i acc =
    if i >= n then Ok (List.rev (Eof :: acc))
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | ',' -> go (i + 1) (Comma :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '[' -> go (i + 1) (Lbracket :: acc)
      | ']' -> go (i + 1) (Rbracket :: acc)
      | '*' -> go (i + 1) (Star :: acc)
      | ';' -> go (i + 1) (Semicolon :: acc)
      | '+' -> go (i + 1) (Op "+" :: acc)
      | '/' -> go (i + 1) (Op "/" :: acc)
      | '%' -> go (i + 1) (Op "%" :: acc)
      | '=' -> go (i + 1) (Op "=" :: acc)
      | '<' ->
          if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (Op "<>" :: acc)
          else if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Op "<=" :: acc)
          else go (i + 1) (Op "<" :: acc)
      | '>' ->
          if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Op ">=" :: acc)
          else go (i + 1) (Op ">" :: acc)
      | '\'' -> string_lit (i + 1) (Buffer.create 16) acc
      | '-' when value_position acc || i + 1 >= n || not (is_digit input.[i + 1])
        ->
          go (i + 1) (Op "-" :: acc)
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1]) ->
          number i acc
      | c when is_ident_start c -> ident i acc
      | c -> Error (Fmt.str "sql: unexpected character %C at offset %d" c i)
  and string_lit i buf acc =
    if i >= n then Error "sql: unterminated string literal"
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then (
        Buffer.add_char buf '\'';
        string_lit (i + 2) buf acc)
      else go (i + 1) (Str_lit (Buffer.contents buf) :: acc)
    else (
      Buffer.add_char buf input.[i];
      string_lit (i + 1) buf acc)
  and number i acc =
    let j = ref (if input.[i] = '-' then i + 1 else i) in
    while !j < n && is_digit input.[!j] do incr j done;
    let is_float = !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] in
    if is_float then (
      incr j;
      while !j < n && is_digit input.[!j] do incr j done);
    let lexeme = String.sub input i (!j - i) in
    if is_float then
      match float_of_string_opt lexeme with
      | Some f -> go !j (Float_lit f :: acc)
      | None -> Error (Fmt.str "sql: bad float literal %s" lexeme)
    else
      (match int_of_string_opt lexeme with
      | Some v -> go !j (Int_lit v :: acc)
      | None -> Error (Fmt.str "sql: bad int literal %s" lexeme))
  and ident i acc =
    let j = ref i in
    while !j < n && is_ident_char input.[!j] do incr j done;
    let lexeme = String.sub input i (!j - i) in
    let lower = String.lowercase_ascii lexeme in
    if List.mem lower keywords then go !j (Kw lower :: acc)
    else go !j (Ident lexeme :: acc)
  in
  go 0 []
