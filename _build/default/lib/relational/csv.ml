(* Each cell is returned with a flag recording whether any part of it was
   quoted — a quoted [null] is the string "null", not the null value. *)
let parse_line_q line =
  let buf = Buffer.create 16 in
  let cells = ref [] in
  let quoted = ref false in
  let n = String.length line in
  let flush () =
    cells := (Buffer.contents buf, !quoted) :: !cells;
    Buffer.clear buf;
    quoted := false
  in
  (* States: outside quotes / inside quotes. A double quote inside a
     quoted cell escapes a literal quote. *)
  let rec outside i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          outside (i + 1)
      | '"' ->
          quoted := true;
          inside (i + 1)
      | c ->
          Buffer.add_char buf c;
          outside (i + 1)
  and inside i =
    if i >= n then flush ()
    else
      match line.[i] with
      | '"' ->
          if i + 1 < n && line.[i + 1] = '"' then (
            Buffer.add_char buf '"';
            inside (i + 2))
          else outside (i + 1)
      | c ->
          Buffer.add_char buf c;
          inside (i + 1)
  in
  outside 0;
  List.rev !cells

let parse_line line = List.map fst (parse_line_q line)

let ( let* ) = Result.bind

let split_lines doc =
  String.split_on_char '\n' doc
  |> List.map (fun l ->
         let l = if String.length l > 0 && l.[String.length l - 1] = '\r'
                 then String.sub l 0 (String.length l - 1) else l in
         l)
  |> List.filter (fun l -> String.trim l <> "")

let load schema doc =
  match split_lines doc with
  | [] -> Error "csv: empty document"
  | header_line :: data_lines ->
      let header = List.map String.trim (parse_line header_line) in
      let* () =
        match
          List.find_opt (fun h -> not (Schema.mem schema h)) header
        with
        | Some h -> Error (Fmt.str "csv: unknown column %s" h)
        | None -> (
            match
              List.find_opt
                (fun a -> not (List.mem a header))
                (Schema.attribute_names schema)
            with
            | Some a -> Error (Fmt.str "csv: missing column %s" a)
            | None -> Ok ())
      in
      let parse_row lineno line =
        let cells = parse_line_q line in
        if List.length cells <> List.length header then
          Error (Fmt.str "csv line %d: expected %d cells, got %d" lineno
                   (List.length header) (List.length cells))
        else
          List.fold_left2
            (fun acc col (cell, was_quoted) ->
              let* bindings = acc in
              let domain = Option.get (Schema.domain_of schema col) in
              let* v =
                (* Quoted cells are literal: never null, and for strings
                   taken verbatim (Value.parse would strip a leading and
                   trailing double quote). *)
                if was_quoted && domain = Value.DStr then Ok (Value.Str cell)
                else if
                  (not was_quoted) && String.lowercase_ascii (String.trim cell) = "null"
                then Ok Value.Null
                else if domain = Value.DStr then Ok (Value.Str cell)
                else
                  Result.map_error
                    (fun e -> Fmt.str "csv line %d, column %s: %s" lineno col e)
                    (Value.parse domain cell)
              in
              Ok ((col, v) :: bindings))
            (Ok []) header cells
          |> Result.map Tuple.make
      in
      let* tuples =
        List.fold_left
          (fun acc (i, line) ->
            let* ts = acc in
            let* t = parse_row (i + 2) line in
            Ok (t :: ts))
          (Ok [])
          (List.mapi (fun i l -> i, l) data_lines)
      in
      Result.map_error Relation.error_to_string
        (Relation.of_list schema (List.rev tuples))

let escape_cell s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
    || String.lowercase_ascii s = "null"
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let dump r =
  let attrs = Schema.attribute_names (Relation.schema r) in
  let cell t a =
    match Tuple.get t a with
    | Value.Null -> "null"
    | v -> escape_cell (Fmt.str "%a" Value.pp_plain v)
  in
  let row t = String.concat "," (List.map (cell t) attrs) in
  String.concat "\n"
    (String.concat "," attrs :: List.map row (Relation.to_list r))
