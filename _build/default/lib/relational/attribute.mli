(** Typed attributes (columns) of a relation schema. *)

type t = {
  name : string;  (** attribute name, unique within a schema *)
  domain : Value.domain;
}

val make : string -> Value.domain -> t

val int : string -> t
(** [int n] is [make n DInt]. *)

val float : string -> t
val str : string -> t
val bool : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
