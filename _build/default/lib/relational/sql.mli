(** Executor for the small SQL-like DML.

    This gives the relational substrate a realistic front door (the paper
    assumes an ordinary relational DBMS below the view-object layer) and
    is used by the CLI and the examples to populate databases. Supported:

    {v
    CREATE TABLE r (a int, b string, ...) KEY (a);
    DROP TABLE r;
    INSERT INTO r (a, b) VALUES (1, 'x');
    DELETE FROM r WHERE ...;
    UPDATE r SET a = a + 1, b = 'y' WHERE a * 2 < 10;
    SELECT a, b AS bb FROM r, s AS t WHERE r.a = t.c AND b > 3
      ORDER BY a DESC LIMIT 5;
    SELECT a, count(x) AS n, avg(b) FROM r GROUP BY a HAVING n > 1;
    v}

    (count also takes the star form for row counts.)

    WHERE conditions and UPDATE right-hand sides support arithmetic
    ([+ - * / %], unary minus, parentheses) over attributes and
    literals. *)

type answer =
  | Rows of Algebra.rset  (** SELECT result *)
  | Affected of int  (** rows touched by INSERT/DELETE/UPDATE *)
  | Done  (** DDL *)

val compile_scalar :
  resolve:(string -> (string, string) result) ->
  Sql_ast.sexpr ->
  (Predicate.scalar, string) result

val compile_condition :
  resolve:(string -> (string, string) result) ->
  Sql_ast.condition ->
  (Predicate.t, string) result
(** Translate a parsed WHERE condition into a {!Predicate.t}; [resolve]
    maps (possibly qualified) attribute references to output attribute
    names. *)

val exec : Database.t -> Sql_ast.statement -> (Database.t * answer, string) result

val run : Database.t -> string -> (Database.t * answer, string) result
(** Parse and execute one statement. *)

val run_script : Database.t -> string -> (Database.t * answer list, string) result
(** Parse and execute a [';']-separated script, stopping at the first
    error. *)

val pp_answer : Format.formatter -> answer -> unit
