(** ASCII table rendering for relations and result sets. *)

val render : header:string list -> string list list -> string
(** Column-aligned ASCII table with a header rule. *)

val of_relation : Relation.t -> string
val of_rset : Algebra.rset -> string
val of_tuples : attrs:string list -> Tuple.t list -> string
