let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let cell r i = match List.nth_opt r i with Some c -> c | None -> "" in
  let width i =
    List.fold_left (fun acc r -> max acc (String.length (cell r i))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line r =
    "| "
    ^ String.concat " | " (List.mapi (fun i w -> pad (cell r i) w) widths)
    ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  String.concat "\n"
    ((rule :: line header :: rule :: List.map line rows) @ [ rule ])

let of_tuples ~attrs tuples =
  let row t =
    List.map (fun a -> Fmt.str "%a" Value.pp_plain (Tuple.get t a)) attrs
  in
  render ~header:attrs (List.map row tuples)

let of_relation r =
  let attrs = Schema.attribute_names (Relation.schema r) in
  of_tuples ~attrs (Relation.to_list r)

let of_rset (rs : Algebra.rset) = of_tuples ~attrs:rs.attrs rs.rows
