(** Minimal CSV import/export for relations.

    Format: first line is the header (attribute names); cells are
    optionally double-quoted (quotes doubled inside); separator is [','].
    Values are parsed against the target schema's domains; the literal
    [null] (unquoted) denotes [Null]. *)

val parse_line : string -> string list
(** Split one CSV line into raw cells (handles quoting). *)

val load : Schema.t -> string -> (Relation.t, string) result
(** Parse a whole CSV document (string) into a relation. The header must
    bind every schema attribute (order free); extra columns are an
    error. *)

val dump : Relation.t -> string
(** Render a relation as a CSV document, header first, rows in key
    order. *)
