(** Relation schemas: a named list of typed attributes plus a primary key.

    The structural model (Section 2 of the paper) constrains connections in
    terms of key ([K(R)]) and nonkey ([NK(R)]) attribute sets, so the key
    is a mandatory part of every schema. *)

type t = private {
  name : string;
  attributes : Attribute.t list;  (** in declaration order *)
  key : string list;  (** subset of attribute names, non-empty *)
}

val make :
  name:string ->
  attributes:Attribute.t list ->
  key:string list ->
  (t, string) result
(** Validates: non-empty attribute list, unique attribute names, non-empty
    key included in the attributes. *)

val make_exn : name:string -> attributes:Attribute.t list -> key:string list -> t
(** @raise Invalid_argument when {!make} would return [Error]. *)

val attribute_names : t -> string list
val key_attributes : t -> string list
(** [K(R)]: the key attribute names, in declaration order. *)

val nonkey_attributes : t -> string list
(** [NK(R)]: the nonkey attribute names, in declaration order. *)

val mem : t -> string -> bool
val find : t -> string -> Attribute.t option
val domain_of : t -> string -> Value.domain option
val is_key_attr : t -> string -> bool
val arity : t -> int

val project : t -> string list -> (t, string) result
(** Schema of a projection; the key is intersected with the kept
    attributes (and may legitimately end up spanning all kept attributes
    when the original key is projected out, in which case all kept
    attributes form the key). *)

val rename : t -> string -> t
(** Rename the relation (attributes unchanged). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
