(** Selection predicates evaluated against a single tuple.

    Used by relational selection, by view definitions in the Keller
    baseline, and (per-node) by the view-object query compiler. *)

type comparison =
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq

(** Scalar expressions over one tuple. Arithmetic follows SQL-flavoured
    rules: [Null] propagates; two ints yield an int (integer division);
    any float operand promotes to float; type mismatches (and division
    by zero) yield [Null]. [S_concat] joins strings. *)
type scalar =
  | S_attr of string
  | S_const of Value.t
  | S_add of scalar * scalar
  | S_sub of scalar * scalar
  | S_mul of scalar * scalar
  | S_div of scalar * scalar
  | S_mod of scalar * scalar
  | S_neg of scalar
  | S_concat of scalar * scalar

type t =
  | True
  | False
  | Cmp of string * comparison * Value.t  (** attribute vs constant *)
  | Cmp_attr of string * comparison * string  (** attribute vs attribute *)
  | Cmp_scalar of scalar * comparison * scalar  (** computed operands *)
  | Is_null of string
  | Not_null of string
  | And of t * t
  | Or of t * t
  | Not of t

val eval_scalar : Tuple.t -> scalar -> Value.t

val eval : t -> Tuple.t -> bool
(** Comparisons involving [Null] are false (three-valued logic collapsed
    to false at the top, as in SQL's WHERE). [Is_null]/[Not_null] test
    nullness directly. *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val eq : string -> Value.t -> t
val eq_str : string -> string -> t
val eq_int : string -> int -> t
val lt_int : string -> int -> t
val gt_int : string -> int -> t

val conj : t list -> t
(** Conjunction of a list ([True] for the empty list). *)

val attributes : t -> string list
(** Attribute names mentioned, without duplicates. *)

val matches_tuple : Tuple.t -> t
(** Predicate selecting exactly the tuples equal to the given one on its
    bound attributes. *)

val pp : Format.formatter -> t -> unit
val pp_comparison : Format.formatter -> comparison -> unit
val pp_scalar : Format.formatter -> scalar -> unit
