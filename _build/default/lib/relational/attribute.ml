type t = {
  name : string;
  domain : Value.domain;
}

let make name domain = { name; domain }
let int name = make name Value.DInt
let float name = make name Value.DFloat
let str name = make name Value.DStr
let bool name = make name Value.DBool

let equal a b = String.equal a.name b.name && a.domain = b.domain

let compare a b =
  match String.compare a.name b.name with
  | 0 -> Stdlib.compare a.domain b.domain
  | c -> c

let pp ppf { name; domain } =
  Fmt.pf ppf "%s:%a" name Value.pp_domain domain
