open Structural
open Viewobject

let ( let* ) = Result.bind

let translate g db (vo : Definition.t) spec inst =
  if not spec.Translator_spec.allow_deletion then
    Error
      (Fmt.str "translator for %s does not allow complete deletions"
         spec.Translator_spec.object_name)
  else
    let* () = Instance.conforms vo inst in
    let* extended = Instantiate.extend_inherited g vo inst in
    (* Isolate the dependency island and collect its tuples as deletion
       seeds, verifying the instance against the database as we go. *)
    let island = Island.island_labels vo in
    let* seeds =
      let rec collect (i : Instance.t) =
        if not (List.mem i.Instance.label island) then Ok []
        else
          let* db_tuple =
            Instance_db.verify_current g db ~label:i.Instance.label
              i.Instance.relation i.Instance.tuple
          in
          let* below =
            List.fold_left
              (fun acc (_, subs) ->
                List.fold_left
                  (fun acc sub ->
                    let* sofar = acc in
                    let* more = collect sub in
                    Ok (sofar @ more))
                  acc subs)
              (Ok []) i.Instance.children
          in
          Ok ((i.Instance.relation, db_tuple) :: below)
      in
      collect extended
    in
    Integrity.cascade_delete g db ~policy:(Translator_spec.delete_policy spec)
      ~seeds
