(** Translator specifications for view-object updates (Sections 5–6).

    A translator resolves, once and for all, every ambiguity that can
    arise when translating updates on a given view object into database
    operations. It is chosen at object-definition time — normally through
    the {!Dialog} — and then drives {!Vo_cd}, {!Vo_ci}, {!Vo_r} and
    {!Global_validation} for every subsequent update request. *)

open Structural

(** Key-replacement permissions for a dependency-island relation
    (the three key questions of the Section 6 dialog). *)
type key_policy = {
  allow_vo_key_change : bool;
      (** "The key of a tuple of relation X could be modified during
          replacements. Do you allow this?" *)
  allow_db_key_replace : bool;
      (** "Can we replace the key of the corresponding database tuple?" *)
  allow_merge_with_existing : bool;
      (** "The system might need to delete the old database tuple, and
          replace it with an existing tuple with matching key. Do you
          allow this?" *)
}

(** Modification permissions for a relation outside the island
    (the three modification questions of the Section 6 dialog). *)
type modification_policy = {
  modifiable : bool;
      (** "Can the relation X be modified during insertions (or
          replacements)?" *)
  allow_insert : bool;  (** "Can a new tuple be inserted?" *)
  allow_modify : bool;  (** "Can an existing tuple be modified?" *)
}

type t = {
  object_name : string;
  allow_insertion : bool;  (** complete insertions permitted *)
  allow_deletion : bool;  (** complete deletions permitted *)
  allow_replacement : bool;
      (** "Is replacement of tuples in an object instance allowed?" *)
  island_keys : (string * key_policy) list;
      (** per island {e relation} *)
  outside : (string * modification_policy) list;
      (** per non-island relation of the object; also consulted for
          relations outside the object during global validation *)
  reference_actions : (string * Integrity.reference_action) list;
      (** per connection id ({!Connection.id}): what deletions do to
          referencing tuples — peninsulas and outside references alike *)
  default_outside : modification_policy;
      (** fallback for relations not listed in [outside] *)
  default_reference_action : Integrity.reference_action;
      (** fallback for connections not listed in [reference_actions] *)
}

val permissive : object_name:string -> t
(** Everything allowed; deletions cascade to referencing tuples
    ([Delete_referencing]); merging with an existing tuple on key
    replacement is {e not} allowed (matching the paper's sample dialog,
    which answers NO to the merge question). *)

val restrictive : object_name:string -> t
(** Complete updates allowed but nothing else: no key changes, no
    modification of outside relations, deletions restricted by any
    surviving reference. *)

val with_outside : t -> string -> modification_policy -> t
(** Override the policy of one outside relation. *)

val with_island_key : t -> string -> key_policy -> t
val with_reference_action : t -> Connection.t -> Integrity.reference_action -> t

val key_policy_for : t -> string -> key_policy
(** By relation name; a missing entry denies everything. *)

val modification_policy_for : t -> string -> modification_policy
val reference_action_for : t -> Connection.t -> Integrity.reference_action
val delete_policy : t -> Integrity.delete_policy

val forbid_modification : modification_policy
val allow_all_modification : modification_policy
val forbid_key_changes : key_policy
val allow_key_replace : key_policy
(** VO and DB key changes allowed, merge-with-existing denied — the
    exact combination chosen in the paper's sample dialog. *)

val audit : Schema_graph.t -> Viewobject.Definition.t -> t -> string list
(** Definition-time diagnostics for a translator over its object: the
    requests that will be rejected at run time and why. Reported:
    - island relations whose key policy denies every key change (when
      replacement is allowed) — replacements renaming those tuples will
      be rejected;
    - reference connections into the island whose action is [Restrict] —
      complete deletions roll back while referencing tuples exist;
    - [Nullify] actions on connections whose referencing attributes are
      part of the referencing relation's key — structurally impossible,
      such deletions always roll back;
    - object relations outside the island whose policy forbids both
      insertion and modification — insertions demanding new tuples there
      will be rejected;
    - nodes attached by multi-connection paths — query-only (update
      translation requires direct connections).

    An empty list means every update the translator nominally allows can
    in principle translate. *)

val pp : Format.formatter -> t -> unit
