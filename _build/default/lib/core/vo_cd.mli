(** Algorithm VO-CD: translation of complete-deletion requests
    (Section 5.1).

    "Isolate the dependency island; for each projection in the island,
    delete all matching tuples from the underlying relation; identify the
    referencing peninsulas; for each peninsula, perform a replacement on
    the foreign key of each matching tuple. In a case where replacements
    are not allowed on any of the referencing peninsulas, the transaction
    cannot be completed and has to be rolled back."

    Global integrity maintenance then propagates the deletions across
    outgoing ownership and subset connections (repeatedly if necessary)
    and fixes the foreign keys of any further referencing relations —
    this implementation computes both through
    {!Structural.Integrity.cascade_delete}, whose closure starts from the
    island tuples of the instance. *)

open Relational
open Structural
open Viewobject

val translate :
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Instance.t ->
  (Op.t list, string) result
(** The instance must be current (each island tuple must exist in the
    database and agree on its bound attributes). The resulting operation
    list deletes every island tuple of the instance, everything those
    deletions force, and repairs or removes referencing tuples according
    to the translator's per-connection reference actions. *)
