open Structural

type key_policy = {
  allow_vo_key_change : bool;
  allow_db_key_replace : bool;
  allow_merge_with_existing : bool;
}

type modification_policy = {
  modifiable : bool;
  allow_insert : bool;
  allow_modify : bool;
}

type t = {
  object_name : string;
  allow_insertion : bool;
  allow_deletion : bool;
  allow_replacement : bool;
  island_keys : (string * key_policy) list;
  outside : (string * modification_policy) list;
  reference_actions : (string * Integrity.reference_action) list;
  default_outside : modification_policy;
  default_reference_action : Integrity.reference_action;
}

let forbid_modification =
  { modifiable = false; allow_insert = false; allow_modify = false }

let allow_all_modification =
  { modifiable = true; allow_insert = true; allow_modify = true }

let forbid_key_changes =
  {
    allow_vo_key_change = false;
    allow_db_key_replace = false;
    allow_merge_with_existing = false;
  }

let allow_key_replace =
  {
    allow_vo_key_change = true;
    allow_db_key_replace = true;
    allow_merge_with_existing = false;
  }

let permissive ~object_name =
  {
    object_name;
    allow_insertion = true;
    allow_deletion = true;
    allow_replacement = true;
    island_keys = [];
    outside = [];
    reference_actions = [];
    default_outside = allow_all_modification;
    default_reference_action = Integrity.Delete_referencing;
  }

let restrictive ~object_name =
  {
    object_name;
    allow_insertion = true;
    allow_deletion = true;
    allow_replacement = true;
    island_keys = [];
    outside = [];
    reference_actions = [];
    default_outside = forbid_modification;
    default_reference_action = Integrity.Restrict;
  }

let set_assoc key v l =
  if List.mem_assoc key l then
    List.map (fun (k, old) -> if k = key then k, v else k, old) l
  else l @ [ key, v ]

let with_outside spec rel policy =
  { spec with outside = set_assoc rel policy spec.outside }

let with_island_key spec rel policy =
  { spec with island_keys = set_assoc rel policy spec.island_keys }

let with_reference_action spec conn action =
  {
    spec with
    reference_actions = set_assoc (Connection.id conn) action spec.reference_actions;
  }

let key_policy_for spec rel =
  match List.assoc_opt rel spec.island_keys with
  | Some p -> p
  | None -> forbid_key_changes

let modification_policy_for spec rel =
  match List.assoc_opt rel spec.outside with
  | Some p -> p
  | None -> spec.default_outside

let reference_action_for spec conn =
  match List.assoc_opt (Connection.id conn) spec.reference_actions with
  | Some a -> a
  | None -> spec.default_reference_action

let delete_policy spec conn = reference_action_for spec conn

let audit g vo spec =
  let open Viewobject in
  let island_rels = Island.island_relations vo in
  let findings = ref [] in
  let add fmt = Fmt.kstr (fun m -> findings := m :: !findings) fmt in
  if spec.allow_replacement then
    List.iter
      (fun rel ->
        let p = key_policy_for spec rel in
        if not (p.allow_vo_key_change && p.allow_db_key_replace) then
          add
            "replacements renaming tuples of island relation %s will be \
             rejected (key policy denies key changes)"
            rel)
      island_rels;
  if spec.allow_deletion then
    List.iter
      (fun (c : Connection.t) ->
        if c.Connection.kind = Connection.Reference && List.mem c.Connection.target island_rels
        then
          match reference_action_for spec c with
          | Integrity.Restrict ->
              add
                "deletions will roll back while tuples of %s reference the \
                 island (%s is Restrict)"
                c.Connection.source (Connection.id c)
          | Integrity.Nullify ->
              let source_schema = Schema_graph.schema_exn g c.Connection.source in
              if
                List.exists
                  (Relational.Schema.is_key_attr source_schema)
                  c.Connection.source_attrs
              then
                add
                  "Nullify on %s can never succeed: %s belongs to the key of \
                   %s — deletions will always roll back"
                  (Connection.id c)
                  (String.concat "," c.Connection.source_attrs)
                  c.Connection.source
          | Integrity.Delete_referencing -> ())
      (Schema_graph.connections g);
  List.iter
    (fun rel ->
      if not (List.mem rel island_rels) then
        let p = modification_policy_for spec rel in
        if not (p.modifiable && (p.allow_insert || p.allow_modify)) then
          add
            "relation %s is frozen: insertions or replacements demanding new \
             or changed tuples there will be rejected"
            rel)
    (Definition.relations vo);
  List.iter
    (fun (n : Definition.node) ->
      if not (Definition.is_direct n) then
        add
          "node %s is attached by a multi-connection path: query-only (update \
           translation requires direct connections)"
          n.Definition.label)
    (Definition.nodes vo);
  List.rev !findings

let pp_key_policy ppf p =
  Fmt.pf ppf "vo-key:%b db-key:%b merge:%b" p.allow_vo_key_change
    p.allow_db_key_replace p.allow_merge_with_existing

let pp_modification_policy ppf p =
  Fmt.pf ppf "modifiable:%b insert:%b modify:%b" p.modifiable p.allow_insert
    p.allow_modify

let pp_action ppf = function
  | Integrity.Nullify -> Fmt.string ppf "nullify"
  | Integrity.Delete_referencing -> Fmt.string ppf "delete-referencing"
  | Integrity.Restrict -> Fmt.string ppf "restrict"

let pp ppf spec =
  let pp_entry pp_v ppf (k, v) = Fmt.pf ppf "%s: %a" k pp_v v in
  Fmt.pf ppf
    "@[<v>translator for %s@,\
     insertion:%b deletion:%b replacement:%b@,\
     island keys:@,  %a@,\
     outside:@,  %a@,\
     reference actions:@,  %a@]"
    spec.object_name spec.allow_insertion spec.allow_deletion
    spec.allow_replacement
    Fmt.(list ~sep:(any "@,  ") (pp_entry pp_key_policy))
    spec.island_keys
    Fmt.(list ~sep:(any "@,  ") (pp_entry pp_modification_policy))
    spec.outside
    Fmt.(list ~sep:(any "@,  ") (pp_entry pp_action))
    spec.reference_actions
