(** Shared helpers binding instance nodes to their database tuples.

    The translation algorithms all work on {e extended} instances (every
    node tuple also binds its inherited connecting attributes, cf.
    {!Viewobject.Instantiate.extend_inherited}) and repeatedly need the
    corresponding database tuples. *)

open Relational
open Structural
open Viewobject

val db_key :
  Schema_graph.t -> string -> Tuple.t -> (Value.t list, string) result
(** Key of the given relation's tuple; fails on unbound/null key
    attributes. *)

val lookup :
  Schema_graph.t -> Database.t -> string -> Tuple.t -> (Tuple.t option, string) result
(** Database tuple with the same key, if any. *)

val verify_current :
  Schema_graph.t -> Database.t -> label:string -> string -> Tuple.t ->
  (Tuple.t, string) result
(** The database tuple matching the extended instance tuple, checked for
    staleness: it must exist and agree on every bound attribute. Returns
    the full database tuple. *)

val merged : base:Tuple.t -> Tuple.t -> Tuple.t
(** [merged ~base overriding]: full tuple for a replacement — the
    existing database tuple with the instance's bound attributes written
    over it. *)

val node_pairs :
  Definition.node -> old_subs:Instance.t list -> new_subs:Instance.t list ->
  (Instance.t option * Instance.t option) list
(** Align the old and new sub-instances of one child node for VO-R's
    pairwise walk: first by equality of the node's own (non-inherited)
    key-complement values, then positionally among the leftovers;
    unmatched entries pair with [None]. *)
