open Relational
open Structural
open Viewobject

let ( let* ) = Result.bind

let db_key g relation tuple =
  let schema = Schema_graph.schema_exn g relation in
  let key = Schema.key_attributes schema in
  match List.find_opt (fun k -> Value.is_null (Tuple.get tuple k)) key with
  | Some k ->
      Error
        (Fmt.str "relation %s: key attribute %s is unbound or null" relation k)
  | None -> Ok (List.map (Tuple.get tuple) key)

let lookup g db relation tuple =
  let* key = db_key g relation tuple in
  let* rel =
    Result.map_error Database.error_to_string (Database.relation db relation)
  in
  Ok (Relation.lookup rel key)

let verify_current g db ~label relation tuple =
  let* found = lookup g db relation tuple in
  match found with
  | None ->
      Error
        (Fmt.str "node %s: instance tuple %a has no counterpart in %s" label
           Tuple.pp tuple relation)
  | Some db_tuple ->
      let disagrees =
        List.find_opt
          (fun (a, v) -> not (Value.equal v (Tuple.get db_tuple a)))
          (Tuple.bindings tuple)
      in
      (match disagrees with
      | Some (a, _) ->
          Error
            (Fmt.str
               "node %s: instance is stale — attribute %s disagrees with the \
                database tuple in %s"
               label a relation)
      | None -> Ok db_tuple)

let merged ~base overriding = Tuple.union base overriding

let node_pairs (dn : Definition.node) ~old_subs ~new_subs =
  (* Own identity of a sub-instance: its tuple restricted to the node's
     projection attributes that are not inherited. The inherited part can
     legitimately differ between old and new (that is exactly what a key
     replacement higher up produces), so it must not break the pairing. *)
  let inherited = Definition.inherited_attrs dn in
  let own_attrs =
    List.filter (fun a -> not (List.mem a inherited)) dn.Definition.attrs
  in
  let identity (i : Instance.t) = Tuple.project own_attrs i.Instance.tuple in
  let rec take_match acc news target =
    match news with
    | [] -> None, List.rev acc
    | n :: rest ->
        if Tuple.equal (identity n) target then Some n, List.rev_append acc rest
        else take_match (n :: acc) rest target
  in
  let matched, leftover_news =
    List.fold_left
      (fun (pairs, news) o ->
        let m, news' = take_match [] news (identity o) in
        pairs @ [ o, m ], news')
      ([], new_subs) old_subs
  in
  (* Positionally pair unmatched old entries with leftover new entries. *)
  let rec zip pairs news =
    match pairs, news with
    | [], rest -> List.map (fun n -> None, Some n) rest
    | (o, Some m) :: prest, _ -> (Some o, Some m) :: zip prest news
    | (o, None) :: prest, n :: nrest -> (Some o, Some n) :: zip prest nrest
    | (o, None) :: prest, [] -> (Some o, None) :: zip prest []
  in
  zip matched leftover_news
