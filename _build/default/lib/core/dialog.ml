open Structural
open Viewobject

type answer =
  | Yes
  | No

type question = {
  id : string;
  text : string;
}

type event = {
  question : question;
  answer : answer;
}

type answerer = question -> answer

let scripted ?(default = Yes) table q =
  match List.assoc_opt q.id table with Some a -> a | None -> default

let all_yes (_ : question) = Yes
let all_no (_ : question) = No

let interactive ic oc q =
  let rec ask () =
    output_string oc (q.text ^ " [y/n] ");
    flush oc;
    match String.lowercase_ascii (String.trim (input_line ic)) with
    | "y" | "yes" -> Yes
    | "n" | "no" -> No
    | _ -> ask ()
  in
  ask ()

(* Dialog engine: questions are asked one at a time; follow-ups are only
   generated when their premise holds (footnote 5 pruning). *)
type session = {
  answerer : answerer;
  mutable events : event list;
}

let ask session id text =
  let question = { id; text } in
  let answer = session.answerer question in
  session.events <- session.events @ [ { question; answer } ];
  answer = Yes

let object_relations_sorted (vo : Definition.t) = Definition.relations vo

let deletion_section session g vo spec =
  let allow = ask session "deletion.allowed"
      "Is deletion of object instances allowed?" in
  let spec = { spec with Translator_spec.allow_deletion = allow } in
  if not allow then spec
  else
    let island_rels = Island.island_relations vo in
    let ref_conns =
      List.filter
        (fun (c : Connection.t) ->
          c.kind = Connection.Reference
          && List.mem c.target island_rels
          && not (List.mem c.source island_rels))
        (Schema_graph.connections g)
    in
    List.fold_left
      (fun spec (c : Connection.t) ->
        let cid = Connection.id c in
        let delete =
          ask session
            (Fmt.str "ref.%s.delete" cid)
            (Fmt.str
               "Deleting an instance can leave tuples of relation %s \
                referencing deleted tuples of %s. May the system delete \
                those referencing tuples?"
               c.source c.target)
        in
        if delete then
          Translator_spec.with_reference_action spec c Integrity.Delete_referencing
        else
          let source_schema = Schema_graph.schema_exn g c.source in
          let nullable =
            not
              (List.exists
                 (Relational.Schema.is_key_attr source_schema)
                 c.source_attrs)
          in
          if
            nullable
            && ask session
                 (Fmt.str "ref.%s.nullify" cid)
                 (Fmt.str
                    "May the system instead assign null values to the \
                     referencing attributes of %s?"
                    c.source)
          then Translator_spec.with_reference_action spec c Integrity.Nullify
          else Translator_spec.with_reference_action spec c Integrity.Restrict)
      spec ref_conns

let insertion_section session spec =
  let allow = ask session "insertion.allowed"
      "Is insertion of new object instances allowed?" in
  { spec with Translator_spec.allow_insertion = allow }

let replacement_section session vo spec =
  let allow =
    ask session "replacement.allowed"
      "Is replacement of tuples in an object instance allowed?"
  in
  let spec = { spec with Translator_spec.allow_replacement = allow } in
  (* The modification questions cover "insertions (or replacements)":
     they are relevant as soon as either operation is permitted. The
     island key questions only matter for replacements. *)
  let ask_mods = allow || spec.Translator_spec.allow_insertion in
  if not ask_mods then spec
  else
    let island_rels = Island.island_relations vo in
    List.fold_left
      (fun spec rel ->
        if List.mem rel island_rels then
          if not allow then spec
          else
          (* Island relation: the three key-replacement questions. *)
          let vo_change =
            ask session
              (Fmt.str "key.%s.vo_change" rel)
              (Fmt.str
                 "The key of a tuple of relation %s could be modified during \
                  replacements. Do you allow this?"
                 rel)
          in
          if not vo_change then
            Translator_spec.with_island_key spec rel
              Translator_spec.forbid_key_changes
          else
            let db_replace =
              ask session
                (Fmt.str "key.%s.db_replace" rel)
                "Can we replace the key of the corresponding database tuple?"
            in
            if not db_replace then
              Translator_spec.with_island_key spec rel
                {
                  Translator_spec.allow_vo_key_change = true;
                  allow_db_key_replace = false;
                  allow_merge_with_existing = false;
                }
            else
              let merge =
                ask session
                  (Fmt.str "key.%s.merge" rel)
                  "The system might need to delete the old database tuple, \
                   and replace it with an existing tuple with matching key. \
                   Do you allow this?"
              in
              Translator_spec.with_island_key spec rel
                {
                  Translator_spec.allow_vo_key_change = true;
                  allow_db_key_replace = true;
                  allow_merge_with_existing = merge;
                }
        else
          (* Outside relation: the three modification questions. *)
          let modifiable =
            ask session
              (Fmt.str "mod.%s.modifiable" rel)
              (Fmt.str
                 "Can the relation %s be modified during insertions (or \
                  replacements)?"
                 rel)
          in
          if not modifiable then
            (* Footnote 5: the two follow-up questions are irrelevant and
               thus will not be asked. *)
            Translator_spec.with_outside spec rel
              Translator_spec.forbid_modification
          else
            let allow_insert =
              ask session (Fmt.str "mod.%s.insert" rel)
                "Can a new tuple be inserted?"
            in
            let allow_modify =
              ask session (Fmt.str "mod.%s.modify" rel)
                "Can an existing tuple be modified?"
            in
            Translator_spec.with_outside spec rel
              { Translator_spec.modifiable = true; allow_insert; allow_modify })
      spec
      (object_relations_sorted vo)

let choose ?(ask_insertion = true) ?(ask_deletion = true) g vo answerer =
  let session = { answerer; events = [] } in
  (* Relations of the object get their policies from the questions below.
     Relations OUTSIDE the object are the province of global integrity
     maintenance: Section 5.2 requires the missing-dependency tuples to be
     inserted there, so the fallback policy permits it. References into
     the island default to Restrict until the deletion section grants
     more. *)
  let spec =
    {
      (Translator_spec.restrictive ~object_name:vo.Definition.name) with
      Translator_spec.default_reference_action = Integrity.Restrict;
      default_outside = Translator_spec.allow_all_modification;
    }
  in
  let spec =
    if ask_insertion then insertion_section session spec
    else { spec with Translator_spec.allow_insertion = true }
  in
  let spec =
    if ask_deletion then deletion_section session g vo spec
    else { spec with Translator_spec.allow_deletion = true }
  in
  let spec = replacement_section session vo spec in
  spec, session.events

let paper_omega_answers =
  [
    "replacement.allowed", Yes;
    "key.COURSES.vo_change", Yes;
    "key.COURSES.db_replace", Yes;
    "key.COURSES.merge", No;
    "mod.CURRICULUM.modifiable", Yes;
    "mod.CURRICULUM.insert", Yes;
    "mod.CURRICULUM.modify", Yes;
    "mod.DEPARTMENT.modifiable", Yes;
    "mod.DEPARTMENT.insert", Yes;
    "mod.DEPARTMENT.modify", Yes;
    "key.GRADES.vo_change", Yes;
    "key.GRADES.db_replace", Yes;
    "key.GRADES.merge", No;
    "mod.STUDENT.modifiable", Yes;
    "mod.STUDENT.insert", Yes;
    "mod.STUDENT.modify", Yes;
  ]

let restrictive_department_answers =
  List.map
    (fun (id, a) ->
      if id = "mod.DEPARTMENT.modifiable" then id, No else id, a)
    paper_omega_answers

let transcript events =
  String.concat "\n"
    (List.map
       (fun { question; answer } ->
         Fmt.str "%s <%s>" question.text
           (match answer with Yes -> "YES" | No -> "NO"))
       events)

let question_count events = List.length events
