open Relational
open Structural

let ( let* ) = Result.bind

let apply_or_explain db op =
  match Database.apply db op with
  | Ok db' -> Ok db'
  | Error e ->
      Error
        (Fmt.str "global validation: op %a failed: %s" Op.pp op
           (Database.error_to_string e))

let dependency_closure g db spec ops =
  (* Apply the whole translation to a simulated database first — a later
     op may itself satisfy a dependency of an earlier one — then
     recursively satisfy what is still missing with key-only stub
     insertions (when permitted). *)
  let rec satisfy db acc rel tuple depth =
    if depth > 32 then
      Error "global validation: dependency recursion exceeds depth 32"
    else
      let missing = Integrity.missing_dependencies g db rel tuple in
      List.fold_left
        (fun state (conn, stub) ->
          let* db, acc = state in
          let target_rel =
            (* The stub lives on the other end of the connection. *)
            if conn.Connection.source = rel && conn.Connection.kind = Connection.Reference
            then conn.Connection.target
            else conn.Connection.source
          in
          let policy = Translator_spec.modification_policy_for spec target_rel in
          if not (policy.Translator_spec.modifiable && policy.Translator_spec.allow_insert)
          then
            Error
              (Fmt.str
                 "global validation: inserting into %s requires a tuple in %s \
                  (connection %s), but the translator does not allow \
                  insertions there"
                 rel target_rel (Connection.id conn))
          else
            let op = Op.Insert (target_rel, stub) in
            let* db = apply_or_explain db op in
            let acc = acc @ [ op ] in
            satisfy db acc target_rel stub (depth + 1))
        (Ok (db, acc)) missing
  in
  let* db_after =
    List.fold_left
      (fun state op ->
        let* db = state in
        apply_or_explain db op)
      (Ok db) ops
  in
  let* _db, all_ops =
    List.fold_left
      (fun state op ->
        let* db, acc = state in
        match op with
        | Op.Insert (rel, t) | Op.Replace (rel, _, t) -> satisfy db acc rel t 0
        | Op.Delete _ -> Ok (db, acc))
      (Ok (db_after, ops))
      ops
  in
  Ok all_ops

let check_consistency g db =
  match Integrity.check g db with
  | [] -> Ok ()
  | violations ->
      Error
        (Fmt.str "global validation failed:@,%a"
           Fmt.(list ~sep:cut Integrity.pp_violation)
           violations)
