(** Choosing a translator by dialog at view-object definition time
    (Section 6).

    "The DBA enters in a dialog with the object-definition facility; the
    sequence of answers to the system's questions defines the desired
    translator for the object at hand." Questions are generated from the
    object's structure — island relations get the key-replacement
    questions, the other object relations get the modification questions —
    and follow-up questions whose premise was answered NO are never asked
    (footnote 5 of the paper). *)

open Structural
open Viewobject

type answer =
  | Yes
  | No

type question = {
  id : string;  (** stable identifier, e.g. ["key.COURSES.db_replace"] *)
  text : string;  (** exactly the paper's wording *)
}

type event = {
  question : question;
  answer : answer;
}

type answerer = question -> answer
(** Supplies the DBA's answer to one question. *)

val scripted : ?default:answer -> (string * answer) list -> answerer
(** Answer by question id; unknown ids get [default] (default [Yes]). *)

val all_yes : answerer
val all_no : answerer

val interactive : in_channel -> out_channel -> answerer
(** Print the question, read [y]/[n] lines. *)

val choose :
  ?ask_insertion:bool ->
  ?ask_deletion:bool ->
  Schema_graph.t ->
  Definition.t ->
  answerer ->
  Translator_spec.t * event list
(** Run the dialog for the given object and build the translator. The
    replacement portion reproduces the paper's Section 6 transcript
    question-for-question; [ask_insertion]/[ask_deletion] (default
    [true]) additionally cover the other two update kinds. Also returns
    the ordered list of questions actually asked with their answers. *)

val paper_omega_answers : (string * answer) list
(** The answers the paper's DBA gives for ω in Section 6 (all YES except
    the two merge-with-existing questions). *)

val restrictive_department_answers : (string * answer) list
(** The paper's second translator: as above but DEPARTMENT may not be
    modified — its two follow-up questions are pruned away. *)

val transcript : event list -> string
(** Typeset like the paper: each question on its own lines followed by
    the DBA's [<YES>]/[<NO>]. *)

val question_count : event list -> int
