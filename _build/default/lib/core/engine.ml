open Relational

let src = Logs.Src.create "penguin.engine" ~doc:"view-object update engine"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = {
  request_kind : string;
  ops : Op.t list;
  result : Transaction.outcome;
}

(* Drop ops that are exact duplicates of an earlier op (two sub-instances
   may legitimately demand the same outside insertion). *)
let dedup_ops ops =
  List.fold_left
    (fun acc op -> if List.exists (Op.equal op) acc then acc else acc @ [ op ])
    [] ops

let translate g db vo spec request =
  let result =
    match request with
    | Request.Insert inst -> Vo_ci.translate g db vo spec inst
    | Request.Delete inst -> Vo_cd.translate g db vo spec inst
    | Request.Replace { old_instance; new_instance } ->
        Vo_r.translate g db vo spec ~old_instance ~new_instance
  in
  Result.map dedup_ops result

let apply g db vo spec request =
  let request_kind = Request.kind_name request in
  let object_name = vo.Viewobject.Definition.name in
  Log.debug (fun m -> m "%s on %s: translating" request_kind object_name);
  match translate g db vo spec request with
  | Error reason ->
      Log.info (fun m ->
          m "%s on %s rejected during translation: %s" request_kind object_name
            reason);
      { request_kind; ops = []; result = Transaction.reject reason }
  | Ok ops -> (
      Log.debug (fun m ->
          m "%s on %s: %d operation(s)" request_kind object_name
            (List.length ops));
      match Transaction.run db ops with
      | Transaction.Rolled_back { reason; _ } as rb ->
          Log.warn (fun m ->
              m "%s on %s rolled back during application: %s" request_kind
                object_name reason);
          { request_kind; ops; result = rb }
      | Transaction.Committed db' -> (
          (* Step 4: the candidate state must satisfy every rule of the
             structural model, or the transaction is rolled back. *)
          match Global_validation.check_consistency g db' with
          | Ok () ->
              Log.info (fun m ->
                  m "%s on %s committed (%d op(s))" request_kind object_name
                    (List.length ops));
              { request_kind; ops; result = Transaction.Committed db' }
          | Error reason ->
              Log.warn (fun m ->
                  m "%s on %s failed global validation: %s" request_kind
                    object_name reason);
              { request_kind; ops; result = Transaction.reject reason }))

let apply_exn g db vo spec request =
  match (apply g db vo spec request).result with
  | Transaction.Committed db' -> db'
  | Transaction.Rolled_back { reason; _ } -> failwith reason

let committed outcome =
  match outcome.result with
  | Transaction.Committed db -> Some db
  | Transaction.Rolled_back _ -> None

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%s: %a@,ops:@,%a@]" o.request_kind Transaction.pp o.result
    Op.pp_list o.ops
