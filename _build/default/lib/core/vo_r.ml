open Relational
open Structural
open Viewobject

let ( let* ) = Result.bind

type walk_state = {
  db : Database.t;  (** simulated: reflects ops emitted so far *)
  ops : Op.t list;  (** main sequence, in emission order *)
  deferred : Op.t list;  (** peninsula value rewrites, applied after fix-ups *)
  key_replacements : (string * Tuple.t * Tuple.t) list;
      (** island (relation, old full tuple, new full tuple) with changed keys *)
}

let apply_op st op =
  match Database.apply st.db op with
  | Ok db -> Ok { st with db; ops = st.ops @ [ op ] }
  | Error e ->
      Error (Fmt.str "vo-r: op %a failed: %s" Op.pp op (Database.error_to_string e))

let last_edge (dn : Definition.node) =
  match List.rev dn.Definition.path with
  | [] -> None
  | e :: _ -> Some e

(* A node whose instances reference their parent (inverse reference
   edge). When the parent relation is in the island this is exactly a
   referencing-peninsula node. *)
let is_inverse_reference dn =
  match last_edge dn with
  | Some { Schema_graph.conn; forward = false }
    when conn.Connection.kind = Connection.Reference -> true
  | _ -> false

let bound_equal a b = Tuple.equal a b

let keys_equal k1 k2 = List.compare Value.compare k1 k2 = 0

let tuple_of (i : Instance.t) = i.Instance.tuple

(* Insert-subtree handling ((None, Some n) pairs): VO-CI case analysis
   against the simulated database. *)
let rec insert_subtree g _vo spec island (dn : Definition.node) st (n : Instance.t) =
  let in_island = List.mem n.Instance.label island in
  let* existing = Instance_db.lookup g st.db n.Instance.relation (tuple_of n) in
  let* st =
    match existing with
    | None ->
        if in_island then apply_op st (Op.Insert (n.Instance.relation, tuple_of n))
        else
          let policy =
            Translator_spec.modification_policy_for spec n.Instance.relation
          in
          if policy.Translator_spec.modifiable && policy.Translator_spec.allow_insert
          then apply_op st (Op.Insert (n.Instance.relation, tuple_of n))
          else
            Error
              (Fmt.str
                 "node %s: inserting a new tuple into %s is not allowed by \
                  the translator"
                 n.Instance.label n.Instance.relation)
    | Some db_tuple ->
        let identical =
          List.for_all
            (fun (a, v) -> Value.equal v (Tuple.get db_tuple a))
            (Tuple.bindings (tuple_of n))
        in
        if identical then
          if in_island then
            Error
              (Fmt.str
                 "node %s: an identical tuple already exists in island \
                  relation %s"
                 n.Instance.label n.Instance.relation)
          else Ok st
        else if in_island then
          Error
            (Fmt.str
               "node %s: a conflicting tuple already exists in island \
                relation %s"
               n.Instance.label n.Instance.relation)
        else
          let policy =
            Translator_spec.modification_policy_for spec n.Instance.relation
          in
          if policy.Translator_spec.modifiable && policy.Translator_spec.allow_modify
          then
            let* key = Instance_db.db_key g n.Instance.relation (tuple_of n) in
            apply_op st
              (Op.Replace
                 (n.Instance.relation, key, Instance_db.merged ~base:db_tuple (tuple_of n)))
          else
            Error
              (Fmt.str
                 "node %s: modifying the existing tuple in %s is not allowed \
                  by the translator"
                 n.Instance.label n.Instance.relation)
  in
  List.fold_left
    (fun state (cn : Definition.node) ->
      let* st = state in
      List.fold_left
        (fun state sub ->
          let* st = state in
          insert_subtree g _vo spec island cn st sub)
        (Ok st)
        (Instance.children_of n cn.Definition.label))
    (Ok st) dn.Definition.children

(* Delete-subtree handling ((Some o, None) pairs on island nodes): the
   dropped island tuples disappear with full cascade semantics. *)
let delete_subtree g original_db spec island (dn : Definition.node) st (o : Instance.t) =
  let rec seeds (dn : Definition.node) (i : Instance.t) =
    if not (List.mem i.Instance.label island) then Ok []
    else
      let* db_tuple =
        Instance_db.verify_current g original_db ~label:i.Instance.label
          i.Instance.relation (tuple_of i)
      in
      List.fold_left
        (fun acc (cn : Definition.node) ->
          let* sofar = acc in
          List.fold_left
            (fun acc sub ->
              let* sofar = acc in
              let* more = seeds cn sub in
              Ok (sofar @ more))
            (Ok sofar)
            (Instance.children_of i cn.Definition.label))
        (Ok [ i.Instance.relation, db_tuple ])
        dn.Definition.children
  in
  let* ss = seeds dn o in
  let* cascade =
    Integrity.cascade_delete g original_db
      ~policy:(Translator_spec.delete_policy spec)
      ~seeds:ss
  in
  List.fold_left
    (fun state op ->
      let* st = state in
      apply_op st op)
    (Ok st) cascade

let translate g db (vo : Definition.t) spec ~old_instance ~new_instance =
  if not spec.Translator_spec.allow_replacement then
    Error
      (Fmt.str
         "translator for %s does not allow replacement of tuples in an \
          object instance"
         spec.Translator_spec.object_name)
  else
    let* () = Instance.conforms vo old_instance in
    let* () = Instance.conforms vo new_instance in
    (* Step 2, propagation within the view object: extending both
       instances rewrites every node's inherited attributes from its
       (new) parent, which realizes the downward propagation of the Aⱼ
       key complements. *)
    let* old_ext = Instantiate.extend_inherited g vo old_instance in
    let* new_ext = Instantiate.extend_inherited g vo new_instance in
    let island = Island.island_labels vo in
    let original_db = db in

    let rec process_pair (dn : Definition.node) st
        (pair : Instance.t option * Instance.t option) =
      match pair with
      | None, None -> Ok st
      | None, Some n -> insert_subtree g vo spec island dn st n
      | Some o, None ->
          if List.mem dn.Definition.label island then
            delete_subtree g original_db spec island dn st o
          else
            (* Outside the island the old tuple is shared data; dropping
               it from the instance touches nothing. *)
            Ok st
      | Some o, Some n ->
          let in_island = List.mem dn.Definition.label island in
          let* st =
            if in_island then state_r dn st o n
            else state_i dn st o n
          in
          (* Descend: pair each child node's sub-instances. *)
          List.fold_left
            (fun state (cn : Definition.node) ->
              let* st = state in
              let pairs =
                Instance_db.node_pairs cn
                  ~old_subs:(Instance.children_of o cn.Definition.label)
                  ~new_subs:(Instance.children_of n cn.Definition.label)
              in
              List.fold_left
                (fun state pair ->
                  let* st = state in
                  process_pair cn st pair)
                (Ok st) pairs)
            (Ok st) dn.Definition.children

    and state_r (dn : Definition.node) st (o : Instance.t) (n : Instance.t) =
      let rel = dn.Definition.relation in
      let* db_old =
        Instance_db.verify_current g original_db ~label:o.Instance.label rel
          (tuple_of o)
      in
      if bound_equal (tuple_of o) (tuple_of n) then (* Case R-1 *) Ok st
      else
        let* old_key = Instance_db.db_key g rel (tuple_of o) in
        let* new_key = Instance_db.db_key g rel (tuple_of n) in
        if keys_equal old_key new_key then
          (* Case R-2: plain replacement. *)
          apply_op st
            (Op.Replace (rel, old_key, Instance_db.merged ~base:db_old (tuple_of n)))
        else begin
          (* Case R-3: key replacement, island only. *)
          let policy = Translator_spec.key_policy_for spec rel in
          if not policy.Translator_spec.allow_vo_key_change then
            Error
              (Fmt.str
                 "node %s: the key of relation %s may not be modified during \
                  replacements"
                 o.Instance.label rel)
          else if not policy.Translator_spec.allow_db_key_replace then
            Error
              (Fmt.str
                 "node %s: replacing the key of the database tuple of %s is \
                  not allowed"
                 o.Instance.label rel)
          else
            let* existing =
              let* r =
                Result.map_error Database.error_to_string
                  (Database.relation st.db rel)
              in
              Ok (Relation.lookup r new_key)
            in
            match existing with
            | None ->
                let merged = Instance_db.merged ~base:db_old (tuple_of n) in
                let* st = apply_op st (Op.Replace (rel, old_key, merged)) in
                Ok
                  {
                    st with
                    key_replacements =
                      st.key_replacements @ [ rel, db_old, merged ];
                  }
            | Some existing_tuple ->
                if not policy.Translator_spec.allow_merge_with_existing then
                  Error
                    (Fmt.str
                       "node %s: a tuple of %s with the new key already \
                        exists, and deleting the old tuple to merge with it \
                        is not allowed"
                       o.Instance.label rel)
                else
                  let merged =
                    Instance_db.merged ~base:existing_tuple (tuple_of n)
                  in
                  let* st = apply_op st (Op.Delete (rel, old_key)) in
                  let* st = apply_op st (Op.Replace (rel, new_key, merged)) in
                  Ok
                    {
                      st with
                      key_replacements =
                        st.key_replacements @ [ rel, db_old, merged ];
                    }
        end

    and state_i (dn : Definition.node) st (o : Instance.t) (n : Instance.t) =
      let rel = dn.Definition.relation in
      let* old_key = Instance_db.db_key g rel (tuple_of o) in
      let* new_key = Instance_db.db_key g rel (tuple_of n) in
      if keys_equal old_key new_key then
        (* Case I-1: handle as state R, gated by the modification policy
           of the outside relation. *)
        if bound_equal (tuple_of o) (tuple_of n) then Ok st
        else
          let policy = Translator_spec.modification_policy_for spec rel in
          if policy.Translator_spec.modifiable && policy.Translator_spec.allow_modify
          then
            let* db_old =
              Instance_db.verify_current g original_db ~label:o.Instance.label
                rel (tuple_of o)
            in
            apply_op st
              (Op.Replace (rel, old_key, Instance_db.merged ~base:db_old (tuple_of n)))
          else
            Error
              (Fmt.str
                 "node %s: modifying the existing tuple in %s is not allowed \
                  by the translator"
                 o.Instance.label rel)
      else if is_inverse_reference dn then begin
        (* The node's tuples reference their parent. Changes to the own
           part of the key are the prohibited peninsula key replacement;
           changes to the inherited part are consequences of a parent key
           change and are realized by the structural fix-ups. *)
        let inherited = Definition.inherited_attrs dn in
        let own_changed =
          List.exists
            (fun a ->
              (not (List.mem a inherited))
              && not
                   (Value.equal
                      (Tuple.get (tuple_of o) a)
                      (Tuple.get (tuple_of n) a)))
            (Schema.key_attributes (Schema_graph.schema_exn g rel))
        in
        if own_changed then
          Error
            (Fmt.str
               "node %s: replacements on keys of referencing relation %s are \
                inherently ambiguous and hence prohibited"
               o.Instance.label rel)
        else
          (* Inherited key parts changed. Non-key value changes, if any,
             are applied after the fix-ups have moved the tuple to its
             new key. *)
          let nonkey_changed =
            List.exists
              (fun a ->
                (not (List.mem a inherited))
                && not
                     (Value.equal
                        (Tuple.get (tuple_of o) a)
                        (Tuple.get (tuple_of n) a)))
              (Tuple.attributes (tuple_of o))
          in
          if not nonkey_changed then Ok st
          else
            let policy = Translator_spec.modification_policy_for spec rel in
            if policy.Translator_spec.modifiable && policy.Translator_spec.allow_modify
            then
              let* db_old =
                Instance_db.verify_current g original_db
                  ~label:o.Instance.label rel (tuple_of o)
              in
              let merged = Instance_db.merged ~base:db_old (tuple_of n) in
              Ok { st with deferred = st.deferred @ [ Op.Replace (rel, new_key, merged) ] }
            else
              Error
                (Fmt.str
                   "node %s: modifying the existing tuple in %s is not \
                    allowed by the translator"
                   o.Instance.label rel)
      end
      else begin
        (* Cases I-2 / I-3 / I-4 against the simulated database. *)
        let* existing =
          let* r =
            Result.map_error Database.error_to_string (Database.relation st.db rel)
          in
          Ok (Relation.lookup r new_key)
        in
        let policy = Translator_spec.modification_policy_for spec rel in
        match existing with
        | None ->
            (* Case I-2. *)
            if policy.Translator_spec.modifiable && policy.Translator_spec.allow_insert
            then apply_op st (Op.Insert (rel, tuple_of n))
            else
              Error
                (Fmt.str
                   "node %s: inserting a new tuple into %s is not allowed by \
                    the translator"
                   o.Instance.label rel)
        | Some db_tuple ->
            let identical =
              List.for_all
                (fun (a, v) -> Value.equal v (Tuple.get db_tuple a))
                (Tuple.bindings (tuple_of n))
            in
            if identical then (* Case I-3 *) Ok st
            else if
              (* Case I-4. *)
              policy.Translator_spec.modifiable && policy.Translator_spec.allow_modify
            then
              apply_op st
                (Op.Replace (rel, new_key, Instance_db.merged ~base:db_tuple (tuple_of n)))
            else
              Error
                (Fmt.str
                   "node %s: modifying the existing tuple in %s is not \
                    allowed by the translator"
                   o.Instance.label rel)
      end
    in

    let st0 = { db; ops = []; deferred = []; key_replacements = [] } in
    let* st = process_pair vo.Definition.root st0 (Some old_ext, Some new_ext) in
    (* Validation against the structural model: island key replacements
       propagate to referencing relations (the peninsulas included) and
       to owned/subset relations outside the object. *)
    let island_rels = Island.island_relations vo in
    let fixups =
      List.concat_map
        (fun (rel, old_tuple, new_tuple) ->
          Integrity.key_replacement_fixups g original_db ~relation:rel
            ~old_tuple ~new_tuple
            ~exclude:(fun r -> List.mem r island_rels))
        st.key_replacements
    in
    Global_validation.dependency_closure g db (spec)
      (st.ops @ fixups @ st.deferred)
