open Relational
open Viewobject

type t =
  | Insert of Instance.t
  | Delete of Instance.t
  | Replace of {
      old_instance : Instance.t;
      new_instance : Instance.t;
    }

let insert i = Insert i
let delete i = Delete i
let replace ~old_instance ~new_instance = Replace { old_instance; new_instance }

let kind_name = function
  | Insert _ -> "complete insertion"
  | Delete _ -> "complete deletion"
  | Replace _ -> "replacement"

let tuple_agrees ~at t =
  List.for_all
    (fun (a, v) -> Value.equal (Tuple.get t a) v)
    (Tuple.bindings at)

(* Generic single-occurrence edit: [f] receives the matching sub-instance
   and returns its replacement ([None] = detach). [sel] decides which
   tuples of the labelled node match. *)
let edit_where inst ~label ~sel ~(f : Instance.t -> Instance.t option) =
  let matches = ref 0 in
  let rec go (i : Instance.t) =
    let children =
      List.map
        (fun (l, subs) ->
          let subs' =
            List.filter_map
              (fun (s : Instance.t) ->
                if s.Instance.label = label && sel s.Instance.tuple then begin
                  incr matches;
                  f s
                end
                else Some (go s))
              subs
          in
          l, subs')
        i.Instance.children
    in
    { i with Instance.children }
  in
  let root_matches = inst.Instance.label = label && sel inst.Instance.tuple in
  if root_matches then
    match f inst with
    | Some i -> Ok i
    | None -> Error "cannot detach the root component of an instance"
  else
    let result = go inst in
    match !matches with
    | 1 -> Ok result
    | 0 -> Error (Fmt.str "no sub-instance of node %s matches" label)
    | n -> Error (Fmt.str "%d sub-instances of node %s match; be more specific" n label)

let edit_matching inst ~label ~at ~f =
  edit_where inst ~label ~sel:(fun t -> tuple_agrees ~at t) ~f

let modify_component inst ~label ~at ~f =
  edit_matching inst ~label ~at ~f:(fun s ->
      Some { s with Instance.tuple = f s.Instance.tuple })

let modify_where inst ~label ~sel ~f =
  edit_where inst ~label ~sel ~f:(fun s ->
      Some { s with Instance.tuple = f s.Instance.tuple })

let detach_component inst ~label ~at =
  edit_matching inst ~label ~at ~f:(fun _ -> None)

let detach_where inst ~label ~sel = edit_where inst ~label ~sel ~f:(fun _ -> None)

let attach_component inst ~parent_label ~at ~child =
  edit_matching inst ~label:parent_label ~at ~f:(fun s ->
      Some
        (Instance.with_children s child.Instance.label
           (Instance.children_of s child.Instance.label @ [ child ])))

let attach_where inst ~parent_label ~sel ~child =
  edit_where inst ~label:parent_label ~sel ~f:(fun s ->
      Some
        (Instance.with_children s child.Instance.label
           (Instance.children_of s child.Instance.label @ [ child ])))

let as_replace old_instance result =
  Result.map (fun new_instance -> Replace { old_instance; new_instance }) result

let partial_modify inst ~label ~at ~f =
  as_replace inst (modify_component inst ~label ~at ~f)

let partial_attach inst ~parent_label ~at ~child =
  as_replace inst (attach_component inst ~parent_label ~at ~child)

let partial_detach inst ~label ~at =
  as_replace inst (detach_component inst ~label ~at)

let pp ppf = function
  | Insert i -> Fmt.pf ppf "@[<v>insert instance:@,%a@]" Instance.pp i
  | Delete i -> Fmt.pf ppf "@[<v>delete instance:@,%a@]" Instance.pp i
  | Replace { old_instance; new_instance } ->
      Fmt.pf ppf "@[<v>replace instance:@,%a@,with:@,%a@]" Instance.pp
        old_instance Instance.pp new_instance
