open Relational
open Viewobject

let ( let* ) = Result.bind

(* Classify one extended instance tuple against the (simulated) database
   and emit the VO-CI case op. [db] already reflects earlier ops of the
   same request, so two sub-instances inserting the same outside tuple
   fall into case 1 the second time. *)
let case_op g db spec ~in_island ~label relation tuple =
  let* existing = Instance_db.lookup g db relation tuple in
  match existing with
  | None ->
      (* Case 2: insert. Island relations are the new entity itself and
         are always insertable; outside relations need permission. *)
      if in_island then Ok (Some (Op.Insert (relation, tuple)))
      else
        let policy = Translator_spec.modification_policy_for spec relation in
        if policy.Translator_spec.modifiable && policy.Translator_spec.allow_insert
        then Ok (Some (Op.Insert (relation, tuple)))
        else
          Error
            (Fmt.str
               "node %s: inserting a new tuple into %s is not allowed by the \
                translator"
               label relation)
  | Some db_tuple ->
      let identical =
        List.for_all
          (fun (a, v) -> Value.equal v (Tuple.get db_tuple a))
          (Tuple.bindings tuple)
      in
      if identical then
        (* Case 1. *)
        if in_island then
          Error
            (Fmt.str
               "node %s: an identical tuple already exists in island relation \
                %s — the instance cannot be inserted"
               label relation)
        else Ok None
      else if in_island then
        (* Case 3, island side: reject. *)
        Error
          (Fmt.str
             "node %s: a tuple with the same key but different values exists \
              in island relation %s"
             label relation)
      else
        (* Case 3, outside: replacement when permitted. *)
        let policy = Translator_spec.modification_policy_for spec relation in
        if policy.Translator_spec.modifiable && policy.Translator_spec.allow_modify
        then
          let* key = Instance_db.db_key g relation tuple in
          Ok (Some (Op.Replace (relation, key, Instance_db.merged ~base:db_tuple tuple)))
        else
          Error
            (Fmt.str
               "node %s: modifying the existing tuple in %s is not allowed by \
                the translator"
               label relation)

let translate g db (vo : Definition.t) spec inst =
  if not spec.Translator_spec.allow_insertion then
    Error
      (Fmt.str "translator for %s does not allow complete insertions"
         spec.Translator_spec.object_name)
  else
    let* () = Instance.conforms vo inst in
    let* extended = Instantiate.extend_inherited g vo inst in
    let island = Island.island_labels vo in
    let rec walk (i : Instance.t) state =
      let* db, ops = state in
      let in_island = List.mem i.Instance.label island in
      let* op =
        case_op g db spec ~in_island ~label:i.Instance.label i.Instance.relation
          i.Instance.tuple
      in
      let* db, ops =
        match op with
        | None -> Ok (db, ops)
        | Some op -> (
            match Database.apply db op with
            | Ok db' -> Ok (db', ops @ [ op ])
            | Error e ->
                Error
                  (Fmt.str "node %s: %s" i.Instance.label
                     (Database.error_to_string e)))
      in
      List.fold_left
        (fun state (_, subs) ->
          List.fold_left (fun state sub -> walk sub state) state subs)
        (Ok (db, ops))
        i.Instance.children
    in
    let* _db, ops = walk extended (Ok (db, [])) in
    Global_validation.dependency_closure g db spec ops
