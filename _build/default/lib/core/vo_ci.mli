(** Algorithm VO-CI: translation of complete-insertion requests
    (Section 5.2).

    For each tuple in each projection of the new instance there are three
    cases:
    - {b Case 1} an identical tuple exists: reject if the relation is in
      the dependency island, do nothing otherwise;
    - {b Case 2} no tuple with the new key exists: insert;
    - {b Case 3} a tuple with the same key exists but some nonkey values
      differ: reject in the island, replace outside (when the translator
      permits).

    Attributes projected out of the object are left [Null] on insertion
    ("how this operation is handled is dependent on the application";
    [Null] padding is this implementation's application choice, cf.
    DESIGN.md). *)

open Relational
open Structural
open Viewobject

val translate :
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Instance.t ->
  (Op.t list, string) result
(** Includes the global-validation insertions (missing owners, subset
    parents and referenced tuples, recursively). *)
