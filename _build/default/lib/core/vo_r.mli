(** Algorithm VO-R: translation of replacement requests (Section 5.3).

    A depth-first walk over the object's tree of relations, starting in
    state R at the pivot. Island nodes are processed in state R
    (replacing): identical projections produce nothing (case R-1),
    matching keys produce a database replacement (R-2), and differing
    keys produce a key replacement (R-3) — gated by the translator's key
    policy, with the delete-old-and-merge-with-existing variant requiring
    its own permission. Nodes outside the island are processed in state I
    (inserting): matching keys fall back to R handling (I-1), a new key
    triggers an insertion when absent from the database (I-2), nothing
    when an identical tuple exists (I-3), and a replacement when values
    conflict (I-4) — the last two gated by the outside-relation
    modification policy.

    Key-handling rules (Section 5.3): replacements on island elements
    translate literally; a replacement of the key of a {e referenced}
    relation leads to an insertion; key replacements on referencing
    peninsulas are prohibited (their foreign keys are instead rewritten by
    the validation step when an island key changes, per
    {!Structural.Integrity.key_replacement_fixups}). *)

open Relational
open Structural
open Viewobject

val translate :
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  old_instance:Instance.t ->
  new_instance:Instance.t ->
  (Op.t list, string) result
(** Produces walk operations, then the structural fix-ups induced by
    island key replacements, then the recursive dependency insertions of
    global validation. *)
