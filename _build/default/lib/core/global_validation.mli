(** Step 4: global validation against the structural model.

    After translation, the database must satisfy every connection's
    integrity rules. For insertions and replacements this can {e create}
    work: "outside relations along inverse ownership, inverse subset, and
    reference connections must be verified for proper dependencies. If no
    tuple satisfying the suitable dependency is found ..., one such tuple
    must be inserted, and the process must be applied recursively"
    (Section 5.2) — subject to the translator's permission to touch those
    relations (the Section 6 example inserts ⟨Engineering Economic
    Systems⟩ into DEPARTMENT only because the permissive translator
    allows it). *)

open Relational
open Structural

val dependency_closure :
  Schema_graph.t ->
  Database.t ->
  Translator_spec.t ->
  Op.t list ->
  (Op.t list, string) result
(** [dependency_closure g db spec ops] simulates [ops] and returns
    [ops] extended with the minimal (key-only) insertions required to
    satisfy every ownership, subset and reference dependency of the
    inserted or replaced tuples, recursively. Fails when a required
    insertion targets a relation whose modification policy forbids
    inserts, or when the ops themselves do not apply. *)

val check_consistency :
  Schema_graph.t -> Database.t -> (unit, string) result
(** Final verification: no integrity violation anywhere (the update
    engine runs this on the candidate database and rolls back on
    failure). *)
