lib/core/request.mli: Format Instance Relational Tuple Viewobject
