lib/core/translator_spec.ml: Connection Definition Fmt Integrity Island List Relational Schema_graph String Structural Viewobject
