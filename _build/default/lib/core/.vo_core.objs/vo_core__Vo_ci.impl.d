lib/core/vo_ci.ml: Database Definition Fmt Global_validation Instance Instance_db Instantiate Island List Op Relational Result Translator_spec Tuple Value Viewobject
