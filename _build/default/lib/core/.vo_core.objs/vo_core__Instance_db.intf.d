lib/core/instance_db.mli: Database Definition Instance Relational Schema_graph Structural Tuple Value Viewobject
