lib/core/vo_ci.mli: Database Definition Instance Op Relational Schema_graph Structural Translator_spec Viewobject
