lib/core/vo_cd.ml: Definition Fmt Instance Instance_db Instantiate Integrity Island List Result Structural Translator_spec Viewobject
