lib/core/instance_db.ml: Database Definition Fmt Instance List Relation Relational Result Schema Schema_graph Structural Tuple Value Viewobject
