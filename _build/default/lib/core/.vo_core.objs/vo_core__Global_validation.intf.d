lib/core/global_validation.mli: Database Op Relational Schema_graph Structural Translator_spec
