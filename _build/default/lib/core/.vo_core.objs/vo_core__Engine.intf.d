lib/core/engine.mli: Database Definition Format Op Relational Request Schema_graph Structural Transaction Translator_spec Viewobject
