lib/core/vo_cd.mli: Database Definition Instance Op Relational Schema_graph Structural Translator_spec Viewobject
