lib/core/dialog.ml: Connection Definition Fmt Integrity Island List Relational Schema_graph String Structural Translator_spec Viewobject
