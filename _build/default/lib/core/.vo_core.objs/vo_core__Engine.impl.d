lib/core/engine.ml: Fmt Global_validation List Logs Op Relational Request Result Transaction Viewobject Vo_cd Vo_ci Vo_r
