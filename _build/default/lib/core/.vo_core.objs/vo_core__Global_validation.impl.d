lib/core/global_validation.ml: Connection Database Fmt Integrity List Op Relational Result Structural Translator_spec
