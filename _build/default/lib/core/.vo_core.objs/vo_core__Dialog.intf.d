lib/core/dialog.mli: Definition Schema_graph Structural Translator_spec Viewobject
