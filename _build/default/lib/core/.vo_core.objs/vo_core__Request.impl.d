lib/core/request.ml: Fmt Instance List Relational Result Tuple Value Viewobject
