lib/core/vo_r.mli: Database Definition Instance Op Relational Schema_graph Structural Translator_spec Viewobject
