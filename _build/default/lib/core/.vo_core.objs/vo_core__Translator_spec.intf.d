lib/core/translator_spec.mli: Connection Format Integrity Schema_graph Structural Viewobject
