(** Update requests on view objects (Section 5).

    Complete updates carry fully specified instances. Partial updates —
    "manipulating only a component of the view object (that is, a node
    in the object's tree)" — are expressed by editing a component of the
    current instance and submitting the result as a replacement; the
    editing combinators below build such requests, and VO-R's case R-1
    guarantees that untouched components translate to no database
    operation. *)

open Relational
open Viewobject

type t =
  | Insert of Instance.t  (** complete insertion *)
  | Delete of Instance.t  (** complete deletion *)
  | Replace of {
      old_instance : Instance.t;
      new_instance : Instance.t;
    }  (** replacement = deletion + insertion of the replacing instance *)

val insert : Instance.t -> t
val delete : Instance.t -> t
val replace : old_instance:Instance.t -> new_instance:Instance.t -> t

val kind_name : t -> string

(** {1 Component editing} *)

val modify_component :
  Instance.t ->
  label:string ->
  at:Tuple.t ->
  f:(Tuple.t -> Tuple.t) ->
  (Instance.t, string) result
(** Rewrite the tuple of the unique sub-instance of node [label] whose
    tuple agrees with the bindings of [at]. Errors when no or several
    sub-instances match. *)

val attach_component :
  Instance.t ->
  parent_label:string ->
  at:Tuple.t ->
  child:Instance.t ->
  (Instance.t, string) result
(** Add a sub-instance under the matching parent occurrence. *)

val detach_component :
  Instance.t ->
  label:string ->
  at:Tuple.t ->
  (Instance.t, string) result
(** Remove the matching sub-instance (with its subtree). *)

(** {2 Predicate selectors}

    The [_where] variants select the unique sub-instance whose tuple
    satisfies an arbitrary predicate rather than agreeing with bindings —
    the textual update language ({!Penguin.Upql}) compiles its selector
    blocks to these. *)

val modify_where :
  Instance.t -> label:string -> sel:(Tuple.t -> bool) ->
  f:(Tuple.t -> Tuple.t) -> (Instance.t, string) result

val detach_where :
  Instance.t -> label:string -> sel:(Tuple.t -> bool) ->
  (Instance.t, string) result

val attach_where :
  Instance.t -> parent_label:string -> sel:(Tuple.t -> bool) ->
  child:Instance.t -> (Instance.t, string) result

val partial_modify :
  Instance.t -> label:string -> at:Tuple.t -> f:(Tuple.t -> Tuple.t) ->
  (t, string) result
(** {!modify_component} packaged as a {!Replace} request. *)

val partial_attach :
  Instance.t -> parent_label:string -> at:Tuple.t -> child:Instance.t ->
  (t, string) result

val partial_detach :
  Instance.t -> label:string -> at:Tuple.t -> (t, string) result

val pp : Format.formatter -> t -> unit
