open Relational

type candidate = {
  description : string;
  ops : Op.t list;
  violations : Criteria.criterion list;
}

let is_valid c = c.violations = []

let pp_candidate ppf c =
  Fmt.pf ppf "@[<v>%s%s@,%a@]" c.description
    (if is_valid c then " (valid)"
     else
       Fmt.str " (violates: %s)"
         (String.concat ", " (List.map Criteria.criterion_name c.violations)))
    Op.pp_list c.ops

let nonempty_subsets l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let subs = go rest in
        subs @ List.map (fun s -> x :: s) subs
  in
  List.filter (fun s -> s <> []) (go l)

let key_of db rel t =
  Tuple.key_of (Relation.schema (Database.relation_exn db rel)) t

let dedup_ops ops =
  List.fold_left
    (fun acc op -> if List.exists (Op.equal op) acc then acc else acc @ [ op ])
    [] ops

let deletions db v t =
  let matching =
    List.filter
      (fun row ->
        List.for_all
          (fun (a, value) -> Value.equal (Tuple.get row a) value)
          (Tuple.bindings t))
      (View.rows db v)
  in
  if matching = [] then
    [ { description = "no view row matches"; ops = [];
        violations = [ Criteria.Requested_change_realized ] } ]
  else
  List.map
    (fun rels ->
      let ops =
        dedup_ops
          (List.concat_map
             (fun row ->
               List.filter_map
                 (fun (rel, base) ->
                   if List.mem rel rels then
                     Some (Op.Delete (rel, key_of db rel base))
                   else None)
                 (View.base_tuples_of_row db v row))
             matching)
      in
      let description =
        Fmt.str "delete from %s" (String.concat ", " rels)
      in
      { description; ops; violations = Criteria.check db v (Criteria.V_delete t) ops })
    (nonempty_subsets v.View.relations)

(* Per-relation handling choices for an insertion. *)
type insert_choice =
  | Ch_insert
  | Ch_use_existing
  | Ch_replace_existing

let choice_name = function
  | Ch_insert -> "insert"
  | Ch_use_existing -> "use existing"
  | Ch_replace_existing -> "replace existing"

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let insertions db v t =
  let per_relation =
    List.map
      (fun rel ->
        let schema = Relation.schema (Database.relation_exn db rel) in
        let attrs = Schema.attribute_names schema in
        let base =
          Tuple.project_null attrs
            (Tuple.project (List.filter (Tuple.mem t) attrs) t)
        in
        let existing =
          match Tuple.conforms schema base with
          | Error _ -> None
          | Ok () ->
              Relation.lookup (Database.relation_exn db rel) (Tuple.key_of schema base)
        in
        let choices =
          match existing with
          | None -> [ Ch_insert ]
          | Some db_tuple ->
              if Tuple.equal db_tuple base then [ Ch_use_existing ]
              else [ Ch_use_existing; Ch_replace_existing ]
        in
        rel, base, choices)
      v.View.relations
  in
  let combos = cartesian (List.map (fun (_, _, cs) -> cs) per_relation) in
  List.map
    (fun combo ->
      let parts = List.combine per_relation combo in
      let ops =
        List.filter_map
          (fun ((rel, base, _), choice) ->
            match choice with
            | Ch_insert -> Some (Op.Insert (rel, base))
            | Ch_use_existing -> None
            | Ch_replace_existing ->
                Some (Op.Replace (rel, key_of db rel base, base)))
          parts
      in
      let description =
        String.concat "; "
          (List.map
             (fun ((rel, _, _), choice) ->
               Fmt.str "%s: %s" rel (choice_name choice))
             parts)
      in
      { description; ops; violations = Criteria.check db v (Criteria.V_insert t) ops })
    combos

(* Per-relation handling choices for a replacement whose base-tuple key
   changes. *)
type replace_choice =
  | Ch_unchanged
  | Ch_in_place
  | Ch_key_replace
  | Ch_insert_keep_old
  | Ch_delete_insert

let replace_choice_name = function
  | Ch_unchanged -> "unchanged"
  | Ch_in_place -> "replace in place"
  | Ch_key_replace -> "replace key"
  | Ch_insert_keep_old -> "insert new, keep old"
  | Ch_delete_insert -> "delete old + insert new"

let replacements db v ~old_row ~new_row =
  let matching =
    List.filter
      (fun row ->
        List.for_all
          (fun (a, value) -> Value.equal (Tuple.get row a) value)
          (Tuple.bindings old_row))
      (View.rows db v)
  in
  match matching with
  | [] | _ :: _ :: _ ->
      [ { description =
            Fmt.str "%d view rows match the old row" (List.length matching);
          ops = [];
          violations = [ Criteria.Requested_change_realized ] } ]
  | [ row ] ->
      let full_new = Tuple.union row new_row in
      let per_relation =
        List.concat_map
          (fun rel ->
            let schema = Relation.schema (Database.relation_exn db rel) in
            let attrs = Schema.attribute_names schema in
            let old_bases =
              List.filter_map
                (fun (r, b) -> if r = rel then Some b else None)
                (View.base_tuples_of_row db v row)
            in
            List.map
              (fun old_base ->
                let new_base =
                  Tuple.union old_base (Tuple.project attrs full_new)
                in
                let choices =
                  if Tuple.equal old_base new_base then [ Ch_unchanged ]
                  else
                    let old_key = Tuple.key_of schema old_base in
                    let new_key = Tuple.key_of schema new_base in
                    if List.compare Value.compare old_key new_key = 0 then
                      [ Ch_in_place ]
                    else [ Ch_key_replace; Ch_insert_keep_old; Ch_delete_insert ]
                in
                rel, schema, old_base, new_base, choices)
              old_bases)
          v.View.relations
      in
      let combos = cartesian (List.map (fun (_, _, _, _, cs) -> cs) per_relation) in
      List.map
        (fun combo ->
          let parts = List.combine per_relation combo in
          let ops =
            List.concat_map
              (fun ((rel, schema, old_base, new_base, _), choice) ->
                let old_key = Tuple.key_of schema old_base in
                match choice with
                | Ch_unchanged -> []
                | Ch_in_place | Ch_key_replace ->
                    [ Op.Replace (rel, old_key, new_base) ]
                | Ch_insert_keep_old -> [ Op.Insert (rel, new_base) ]
                | Ch_delete_insert ->
                    [ Op.Delete (rel, old_key); Op.Insert (rel, new_base) ])
              parts
          in
          let description =
            String.concat "; "
              (List.filter_map
                 (fun ((rel, _, _, _, _), choice) ->
                   match choice with
                   | Ch_unchanged -> None
                   | c -> Some (Fmt.str "%s: %s" rel (replace_choice_name c)))
                 parts)
          in
          let description = if description = "" then "no change" else description in
          { description; ops;
            violations =
              Criteria.check db v (Criteria.V_replace (old_row, new_row)) ops })
        combos

let valid_deletions db v t = List.filter is_valid (deletions db v t)
let valid_insertions db v t = List.filter is_valid (insertions db v t)

let valid_replacements db v ~old_row ~new_row =
  List.filter is_valid (replacements db v ~old_row ~new_row)
