(** Enumeration of candidate view-update translations (Section 4).

    "Conceptually, we specify an enumeration of all possible valid
    translations into sequences of database updates of each view update
    ... We do not actually instantiate this enumeration, we merely use it
    to define the space of alternatives." Here the space {e is}
    instantiated (the views are small), each candidate is scored against
    the five criteria, and the valid ones constitute the alternatives the
    dialog chooses among. *)

open Relational

type candidate = {
  description : string;  (** e.g. ["delete from COURSES, GRADES"] *)
  ops : Op.t list;
  violations : Criteria.criterion list;
}

val is_valid : candidate -> bool

val deletions : Database.t -> View.t -> Tuple.t -> candidate list
(** One candidate per non-empty subset of the view's underlying
    relations: delete the base tuples (of those relations) contributing
    to the matching view rows. *)

val insertions : Database.t -> View.t -> Tuple.t -> candidate list
(** One candidate per per-relation choice among: insert the derived base
    tuple / reuse an existing tuple / replace a conflicting existing
    tuple. *)

val replacements :
  Database.t -> View.t -> old_row:Tuple.t -> new_row:Tuple.t -> candidate list
(** Candidates for replacing the unique view row matching [old_row] by
    [old_row] overridden with [new_row]: per underlying relation whose
    base tuple changes, the choices are an in-place replacement (key
    unchanged), and for key changes a key replacement, an insertion that
    keeps the old tuple, or a delete+insert pair — the last exists in the
    space precisely so the criteria can reject it ("if we have a deletion
    followed by an insertion, we perform a replacement instead"). *)

val valid_deletions : Database.t -> View.t -> Tuple.t -> candidate list
val valid_insertions : Database.t -> View.t -> Tuple.t -> candidate list
val valid_replacements :
  Database.t -> View.t -> old_row:Tuple.t -> new_row:Tuple.t -> candidate list

val pp_candidate : Format.formatter -> candidate -> unit
