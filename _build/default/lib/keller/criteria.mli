(** The five validity criteria for view-update translations
    (Keller [13], summarized in Section 4 of the paper).

    The enumeration of candidate translations is filtered by these
    syntactically-checkable criteria; the remaining ambiguity is what the
    definition-time dialog resolves. *)

open Relational

type view_update =
  | V_insert of Tuple.t
  | V_delete of Tuple.t  (** deletes every view row agreeing with the bindings *)
  | V_replace of Tuple.t * Tuple.t  (** old row, new row *)

type criterion =
  | Requested_change_realized
      (** the view, rematerialized after the translation, shows exactly
          the requested change *)
  | No_side_effects
      (** view rows not mentioned by the request are untouched *)
  | Minimality  (** no proper subset of the operations achieves the change *)
  | Simplest_replacements  (** no replacement that rewrites a tuple to itself *)
  | No_delete_insert_pairs
      (** no delete+insert on the same relation where a replacement would do *)

val criterion_name : criterion -> string

val check :
  Database.t -> View.t -> view_update -> Op.t list -> criterion list
(** Violated criteria (empty = the translation is valid). Checked by
    simulation: the ops are applied to a scratch copy and the view is
    rematerialized. *)

val expected_rows :
  Database.t -> View.t -> view_update -> Tuple.t list
(** The view contents the update requests (used by {!check} and exposed
    for tests). *)

val pp_view_update : Format.formatter -> view_update -> unit
