open Relational

type insert_policy = {
  allow_insert : bool;
  allow_use_existing : bool;
  allow_modify_existing : bool;
}

type t = {
  view : View.t;
  delete_from : string list;
  insert_policies : (string * insert_policy) list;
}

let ( let* ) = Result.bind

let make view ~delete_from ~insert_policies =
  if delete_from = [] then Error "translator: empty delete-from set"
  else
    match
      List.find_opt
        (fun r -> not (List.mem r view.View.relations))
        (delete_from @ List.map fst insert_policies)
    with
    | Some r -> Error (Fmt.str "translator: %s is not a relation of the view" r)
    | None -> Ok { view; delete_from; insert_policies }

let default view =
  {
    view;
    delete_from = view.View.relations;
    insert_policies =
      List.map
        (fun r ->
          r, { allow_insert = true; allow_use_existing = true;
               allow_modify_existing = false })
        view.View.relations;
  }

let insert_policy_for tr rel =
  match List.assoc_opt rel tr.insert_policies with
  | Some p -> p
  | None ->
      { allow_insert = false; allow_use_existing = true;
        allow_modify_existing = false }

let key_of db rel t =
  Tuple.key_of (Relation.schema (Database.relation_exn db rel)) t

let dedup_ops ops =
  List.fold_left
    (fun acc op -> if List.exists (Op.equal op) acc then acc else acc @ [ op ])
    [] ops

let matching_rows db v t =
  List.filter
    (fun row ->
      List.for_all
        (fun (a, value) -> Value.equal (Tuple.get row a) value)
        (Tuple.bindings t))
    (View.rows db v)

let translate_delete db tr t =
  let rows = matching_rows db tr.view t in
  if rows = [] then
    Error (Fmt.str "view %s: no row matches %a" tr.view.View.name Tuple.pp t)
  else
    Ok
      (dedup_ops
         (List.concat_map
            (fun row ->
              List.filter_map
                (fun (rel, base) ->
                  if List.mem rel tr.delete_from then
                    Some (Op.Delete (rel, key_of db rel base))
                  else None)
                (View.base_tuples_of_row db tr.view row))
            rows))

(* Only the attributes the view row actually binds: padding absent ones
   with [Null] would clobber key values on replacements. *)
let base_tuple_for db rel t =
  let schema = Relation.schema (Database.relation_exn db rel) in
  let attrs = Schema.attribute_names schema in
  Tuple.project attrs t

let translate_insert db tr t =
  List.fold_left
    (fun acc rel ->
      let* ops = acc in
      let base = base_tuple_for db rel t in
      let schema = Relation.schema (Database.relation_exn db rel) in
      let* () =
        Result.map_error
          (fun e -> Fmt.str "view %s: %s" tr.view.View.name e)
          (Tuple.conforms schema base)
      in
      let policy = insert_policy_for tr rel in
      match Relation.lookup (Database.relation_exn db rel) (Tuple.key_of schema base) with
      | None ->
          if policy.allow_insert then Ok (ops @ [ Op.Insert (rel, base) ])
          else
            Error
              (Fmt.str "translator for %s: insertions into %s are not allowed"
                 tr.view.View.name rel)
      | Some db_tuple ->
          let agrees =
            List.for_all
              (fun (a, v) -> Value.is_null v || Value.equal v (Tuple.get db_tuple a))
              (Tuple.bindings base)
          in
          if agrees then
            if policy.allow_use_existing then Ok ops
            else
              Error
                (Fmt.str
                   "translator for %s: reusing existing tuples of %s is not \
                    allowed"
                   tr.view.View.name rel)
          else if policy.allow_modify_existing then
            Ok (ops @ [ Op.Replace (rel, key_of db rel base,
                                    Tuple.union db_tuple base) ])
          else
            Error
              (Fmt.str
                 "translator for %s: a conflicting tuple exists in %s and \
                  modification is not allowed"
                 tr.view.View.name rel)
      )
    (Ok []) tr.view.View.relations

let translate_replace db tr old_row new_row =
  let rows = matching_rows db tr.view old_row in
  match rows with
  | [] ->
      Error (Fmt.str "view %s: no row matches %a" tr.view.View.name Tuple.pp old_row)
  | _ :: _ :: _ ->
      Error
        (Fmt.str "view %s: %a identifies several rows" tr.view.View.name
           Tuple.pp old_row)
  | [ row ] ->
      let full_new = Tuple.union row new_row in
      List.fold_left
        (fun acc rel ->
          let* ops = acc in
          let old_bases =
            List.filter_map
              (fun (r, b) -> if r = rel then Some b else None)
              (View.base_tuples_of_row db tr.view row)
          in
          let new_base = base_tuple_for db rel full_new in
          let schema = Relation.schema (Database.relation_exn db rel) in
          List.fold_left
            (fun acc old_base ->
              let* ops = acc in
              if Tuple.equal old_base (Tuple.union old_base new_base) then Ok ops
              else
                let old_key = Tuple.key_of schema old_base in
                let new_key = Tuple.key_of schema (Tuple.union old_base new_base) in
                if List.compare Value.compare old_key new_key = 0 then
                  Ok (ops @ [ Op.Replace (rel, old_key, Tuple.union old_base new_base) ])
                else if List.mem rel tr.delete_from then
                  Ok (ops @ [ Op.Replace (rel, old_key, Tuple.union old_base new_base) ])
                else
                  let policy = insert_policy_for tr rel in
                  if policy.allow_insert then
                    Ok (ops @ [ Op.Insert (rel, Tuple.union old_base new_base) ])
                  else
                    Error
                      (Fmt.str
                         "translator for %s: key change in %s requires an \
                          insertion, which is not allowed"
                         tr.view.View.name rel))
            (Ok ops) old_bases)
        (Ok []) tr.view.View.relations

let translate db tr = function
  | Criteria.V_delete t -> translate_delete db tr t
  | Criteria.V_insert t -> translate_insert db tr t
  | Criteria.V_replace (o, n) -> translate_replace db tr o n

let translate_and_check db tr update =
  let* ops = translate db tr update in
  Ok (ops, Criteria.check db tr.view update ops)

let pp ppf tr =
  let pp_policy ppf (rel, p) =
    Fmt.pf ppf "%s: insert:%b reuse:%b modify:%b" rel p.allow_insert
      p.allow_use_existing p.allow_modify_existing
  in
  Fmt.pf ppf "@[<v>translator for view %s@,delete from: %s@,%a@]"
    tr.view.View.name
    (String.concat ", " tr.delete_from)
    Fmt.(list ~sep:cut pp_policy)
    tr.insert_policies
