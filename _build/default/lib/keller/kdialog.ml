type answer =
  | Yes
  | No

type question = {
  id : string;
  text : string;
}

type event = {
  question : question;
  answer : answer;
}

type answerer = question -> answer

let scripted ?(default = Yes) table q =
  match List.assoc_opt q.id table with Some a -> a | None -> default

let all_yes (_ : question) = Yes

type session = {
  answerer : answerer;
  mutable events : event list;
}

let ask session id text =
  let question = { id; text } in
  let answer = session.answerer question in
  session.events <- session.events @ [ { question; answer } ];
  answer = Yes

let choose db v answerer =
  ignore db;
  let session = { answerer; events = [] } in
  let delete_from =
    List.filter
      (fun rel ->
        ask session
          (Fmt.str "del.%s" rel)
          (Fmt.str
             "When view tuples are deleted, may tuples be deleted from %s?"
             rel))
      v.View.relations
  in
  let delete_from =
    (* A translator must delete from somewhere; an all-NO dialog yields a
       translator that deletes from the first relation (the query-graph
       root), Keller's default. *)
    if delete_from = [] then [ List.hd v.View.relations ] else delete_from
  in
  let insert_policies =
    List.map
      (fun rel ->
        let modifiable =
          ask session
            (Fmt.str "ins.%s.touch" rel)
            (Fmt.str
               "Can the relation %s be modified during insertions (or \
                replacements)?"
               rel)
        in
        if not modifiable then
          ( rel,
            {
              Translator.allow_insert = false;
              allow_use_existing = true;
              allow_modify_existing = false;
            } )
        else
          let allow_insert =
            ask session (Fmt.str "ins.%s.insert" rel)
              "Can a new tuple be inserted?"
          in
          let allow_modify_existing =
            ask session (Fmt.str "ins.%s.modify" rel)
              "Can an existing tuple be modified?"
          in
          ( rel,
            {
              Translator.allow_insert;
              allow_use_existing = true;
              allow_modify_existing;
            } ))
      v.View.relations
  in
  let translator =
    match Translator.make v ~delete_from ~insert_policies with
    | Ok t -> t
    | Error e -> invalid_arg e
  in
  translator, session.events

type picker = Enumeration.candidate list -> int

let first_candidate (_ : Enumeration.candidate list) = 0

let prefer_fewest_ops candidates =
  let sizes =
    List.mapi (fun i (c : Enumeration.candidate) -> i, List.length c.Enumeration.ops)
      candidates
  in
  fst
    (List.fold_left
       (fun (bi, bn) (i, n) -> if n < bn then i, n else bi, bn)
       (List.hd sizes) (List.tl sizes))

let choose_deletion_by_example db v ~sample picker =
  match Enumeration.valid_deletions db v sample with
  | [] ->
      Error
        (Fmt.str "view %s: no valid deletion translation for the sample"
           v.View.name)
  | candidates ->
      let i = picker candidates in
      if i < 0 || i >= List.length candidates then
        Error (Fmt.str "picker chose %d of %d candidates" i (List.length candidates))
      else
        let chosen = List.nth candidates i in
        let delete_from =
          List.sort_uniq String.compare
            (List.map Relational.Op.relation chosen.Enumeration.ops)
        in
        let delete_from =
          if delete_from = [] then [ List.hd v.View.relations ] else delete_from
        in
        let base = Translator.default v in
        Result.map
          (fun tr -> tr, chosen)
          (Translator.make v ~delete_from
             ~insert_policies:base.Translator.insert_policies)

let transcript events =
  String.concat "\n"
    (List.map
       (fun { question; answer } ->
         Fmt.str "%s <%s>" question.text
           (match answer with Yes -> "YES" | No -> "NO"))
       events)

let question_count events = List.length events
