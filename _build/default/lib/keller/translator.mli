(** Flat-view translators, chosen once at view-definition time
    (Keller [14,15]).

    A translator fixes: which underlying relations deletions remove
    tuples from, and, per relation, how insertions treat missing,
    matching and conflicting base tuples. Replacements combine the two,
    split — exactly as VO-R later generalizes — into tuples whose key
    survives (replace in place) and tuples whose key changes (insert
    semantics, or key replacement in the delete-from relations). *)

open Relational

type insert_policy = {
  allow_insert : bool;
  allow_use_existing : bool;
  allow_modify_existing : bool;
}

type t = {
  view : View.t;
  delete_from : string list;
      (** non-empty subset of the view's relations *)
  insert_policies : (string * insert_policy) list;  (** per relation *)
}

val make :
  View.t ->
  delete_from:string list ->
  insert_policies:(string * insert_policy) list ->
  (t, string) result

val default : View.t -> t
(** Deletes from every underlying relation; inserts and reuse allowed
    everywhere, modification of conflicting tuples denied. *)

val insert_policy_for : t -> string -> insert_policy

val translate :
  Database.t -> t -> Criteria.view_update -> (Op.t list, string) result

val translate_and_check :
  Database.t -> t -> Criteria.view_update ->
  (Op.t list * Criteria.criterion list, string) result
(** Translation plus the criteria report for it. *)

val pp : Format.formatter -> t -> unit
