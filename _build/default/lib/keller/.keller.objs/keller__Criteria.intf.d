lib/keller/criteria.mli: Database Format Op Relational Tuple View
