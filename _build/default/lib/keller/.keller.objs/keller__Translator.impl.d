lib/keller/translator.ml: Criteria Database Fmt List Op Relation Relational Result Schema String Tuple Value View
