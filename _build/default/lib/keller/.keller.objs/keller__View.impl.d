lib/keller/view.ml: Algebra Database Fmt List Predicate Relation Relational Result Schema String Tuple
