lib/keller/translator.mli: Criteria Database Format Op Relational View
