lib/keller/view.mli: Algebra Database Format Predicate Relational Tuple
