lib/keller/enumeration.mli: Criteria Database Format Op Relational Tuple View
