lib/keller/enumeration.ml: Criteria Database Fmt List Op Relation Relational Schema String Tuple Value View
