lib/keller/kdialog.ml: Enumeration Fmt List Relational Result String Translator View
