lib/keller/criteria.ml: Database Fmt List Op Relation Relational Tuple Value View
