lib/keller/kdialog.mli: Enumeration Relational Translator View
