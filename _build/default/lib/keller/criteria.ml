open Relational

type view_update =
  | V_insert of Tuple.t
  | V_delete of Tuple.t
  | V_replace of Tuple.t * Tuple.t

type criterion =
  | Requested_change_realized
  | No_side_effects
  | Minimality
  | Simplest_replacements
  | No_delete_insert_pairs

let criterion_name = function
  | Requested_change_realized -> "requested change realized"
  | No_side_effects -> "no database side effects"
  | Minimality -> "only necessary changes"
  | Simplest_replacements -> "simplest replacements"
  | No_delete_insert_pairs -> "no delete-insert pairs"

let pp_view_update ppf = function
  | V_insert t -> Fmt.pf ppf "view-insert %a" Tuple.pp t
  | V_delete t -> Fmt.pf ppf "view-delete %a" Tuple.pp t
  | V_replace (o, n) -> Fmt.pf ppf "view-replace %a with %a" Tuple.pp o Tuple.pp n

let agrees row t =
  List.for_all (fun (a, v) -> Value.equal (Tuple.get row a) v) (Tuple.bindings t)

let row_mem rows row attrs =
  List.exists (fun r -> Tuple.equal_on attrs r row) rows

let expected_rows db v update =
  let current = View.rows db v in
  let attrs = v.View.projection in
  match update with
  | V_delete t -> List.filter (fun r -> not (agrees r t)) current
  | V_insert t ->
      let full = Tuple.project_null attrs t in
      if row_mem current full attrs then current else current @ [ full ]
  | V_replace (o, n) ->
      (* [n] may be partial: unmentioned attributes keep their old
         values. *)
      List.map
        (fun r ->
          if agrees r o then Tuple.project_null attrs (Tuple.union r n) else r)
        current

let rows_equal attrs a b =
  let sorted rows = List.sort Tuple.compare (List.map (Tuple.project_null attrs) rows) in
  List.equal Tuple.equal (sorted a) (sorted b)

let realizes db v update ops =
  match Database.apply_all db ops with
  | Error _ -> false
  | Ok db' ->
      rows_equal v.View.projection (View.rows db' v) (expected_rows db v update)

let check db v update ops =
  let violations = ref [] in
  let add c = if not (List.mem c !violations) then violations := c :: !violations in
  (* Criteria 1-2: effect on the view. *)
  (match Database.apply_all db ops with
  | Error _ -> add Requested_change_realized
  | Ok db' ->
      let after = View.rows db' v in
      let expected = expected_rows db v update in
      let attrs = v.View.projection in
      let requested_pred row =
        match update with
        | V_delete t -> agrees row t
        | V_insert t -> agrees row (Tuple.project_null attrs t)
        | V_replace (o, n) -> agrees row o || agrees row n
      in
      if not (rows_equal attrs after expected) then begin
        (* Distinguish missing requested change from collateral damage. *)
        let current = View.rows db v in
        let untouched_ok =
          List.for_all
            (fun r -> requested_pred r || row_mem after r attrs)
            current
          && List.for_all
               (fun r -> requested_pred r || row_mem current r attrs)
               after
        in
        if untouched_ok then add Requested_change_realized else add No_side_effects
      end);
  (* Criterion 3: minimality — dropping any single op must break the
     translation. *)
  if realizes db v update ops then begin
    let n = List.length ops in
    let without i = List.filteri (fun j _ -> j <> i) ops in
    let redundant = ref false in
    for i = 0 to n - 1 do
      if realizes db v update (without i) then redundant := true
    done;
    if !redundant then add Minimality
  end;
  (* Criterion 4: no identity replacements. *)
  List.iter
    (fun op ->
      match op with
      | Op.Replace (rel, key, t) -> (
          match Database.relation db rel with
          | Error _ -> ()
          | Ok r -> (
              match Relation.lookup r key with
              | Some old when Tuple.equal old t -> add Simplest_replacements
              | Some _ | None -> ()))
      | Op.Insert _ | Op.Delete _ -> ())
    ops;
  (* Criterion 5: delete+insert on the same relation should have been a
     replacement. *)
  let deletes = List.filter Op.is_delete ops in
  let inserts = List.filter Op.is_insert ops in
  if
    List.exists
      (fun d ->
        List.exists (fun i -> Op.relation i = Op.relation d) inserts)
      deletes
  then add No_delete_insert_pairs;
  List.rev !violations
