open Relational

type t = {
  name : string;
  relations : string list;
  selection : Predicate.t;
  projection : string list;
}

let ( let* ) = Result.bind

let join_expr relations =
  match relations with
  | [] -> invalid_arg "view: no relations"
  | r :: rest ->
      List.fold_left
        (fun acc r' -> Algebra.Natural_join (acc, Algebra.Base r'))
        (Algebra.Base r) rest

let expr v =
  Algebra.Project (v.projection, Algebra.Select (v.selection, join_expr v.relations))

let make db ~name ~relations ~selection ~projection =
  let* () = if relations = [] then Error "view: no relations" else Ok () in
  let* schemas =
    List.fold_left
      (fun acc r ->
        let* ss = acc in
        let* s = Result.map_error Database.error_to_string (Database.schema_of db r) in
        Ok (ss @ [ s ]))
      (Ok []) relations
  in
  (* Consecutive natural joins must share an attribute, or the join
     degenerates to a product. *)
  let rec check_joinable seen = function
    | [] -> Ok ()
    | s :: rest ->
        let attrs = Schema.attribute_names s in
        if seen = [] then check_joinable attrs rest
        else if List.exists (fun a -> List.mem a seen) attrs then
          check_joinable (seen @ attrs) rest
        else
          Error
            (Fmt.str "view %s: relation %s shares no attribute with the \
                      preceding join" name s.Schema.name)
  in
  let* () = check_joinable [] schemas in
  let all_attrs =
    List.sort_uniq String.compare
      (List.concat_map Schema.attribute_names schemas)
  in
  let* () =
    match
      List.find_opt (fun a -> not (List.mem a all_attrs)) projection
    with
    | Some a -> Error (Fmt.str "view %s: unknown projection attribute %s" name a)
    | None -> Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun a -> not (List.mem a all_attrs))
        (Predicate.attributes selection)
    with
    | Some a -> Error (Fmt.str "view %s: unknown selection attribute %s" name a)
    | None -> Ok ()
  in
  Ok { name; relations; selection; projection }

let make_exn db ~name ~relations ~selection ~projection =
  match make db ~name ~relations ~selection ~projection with
  | Ok v -> v
  | Error e -> invalid_arg e

let materialize db v = Algebra.eval db (expr v)

let rows db v =
  match materialize db v with Ok rs -> rs.Algebra.rows | Error _ -> []

let shared_attrs db v rel =
  match Database.schema_of db rel with
  | Error _ -> []
  | Ok s ->
      (* Attributes of [rel] visible in the join result (all of them,
         since natural join keeps every attribute name once). *)
      ignore v;
      Schema.attribute_names s

let base_tuples_of_row db v row =
  List.concat_map
    (fun rel ->
      match Database.relation db rel with
      | Error _ -> []
      | Ok r ->
          let attrs =
            List.filter
              (fun a -> Tuple.mem row a)
              (Schema.attribute_names (Relation.schema r))
          in
          let pred =
            Predicate.conj
              (List.map
                 (fun a -> Predicate.Cmp (a, Predicate.Eq, Tuple.get row a))
                 attrs)
          in
          List.map (fun t -> rel, t) (Relation.select pred r))
    v.relations

let pp ppf v =
  Fmt.pf ppf "view %s = pi[%a](sigma[%a](%a))" v.name
    Fmt.(list ~sep:(any ",") string)
    v.projection Predicate.pp v.selection
    Fmt.(list ~sep:(any " |x| ") string)
    v.relations
