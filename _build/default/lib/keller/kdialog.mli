(** Choosing a flat-view translator by dialog at view definition time
    (Keller, VLDB '86 [14]). The relational counterpart of
    {!Vo_core.Dialog}; the view-object dialog extends this question
    pattern to islands and peninsulas. *)

type answer =
  | Yes
  | No

type question = {
  id : string;
  text : string;
}

type event = {
  question : question;
  answer : answer;
}

type answerer = question -> answer

val scripted : ?default:answer -> (string * answer) list -> answerer
val all_yes : answerer

val choose :
  Relational.Database.t -> View.t -> answerer -> Translator.t * event list
(** Per relation: "When view tuples are deleted, may tuples be deleted
    from R?"; then the three insertion questions (insert / reuse /
    modify), with NO-premise follow-ups pruned. *)

val transcript : event list -> string
val question_count : event list -> int

(** {1 Choosing among enumerated candidates}

    The alternative definition-time protocol: show the DBA the valid
    translations of a {e sample} update and let her pick one; the choice
    fixes the translator for all later updates of that kind. *)

type picker = Enumeration.candidate list -> int
(** Given the valid candidates (non-empty), return the index of the
    chosen one. Out-of-range indices are an error. *)

val first_candidate : picker
val prefer_fewest_ops : picker

val choose_deletion_by_example :
  Relational.Database.t ->
  View.t ->
  sample:Relational.Tuple.t ->
  picker ->
  (Translator.t * Enumeration.candidate, string) result
(** Enumerate the valid deletion translations of the sample view-tuple
    deletion, let [picker] choose, and build a translator whose
    delete-from set consists of the relations the chosen candidate
    deletes from (insert policies default to {!Translator.default}'s).
    Errors when no valid candidate exists. *)
