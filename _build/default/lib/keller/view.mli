(** Flat relational views (Section 4; Keller [13,14,15]).

    The baseline the paper builds on: select–project–join views over base
    relations, joined naturally on shared attribute names. Each view
    tuple is in first normal form — contrast with the fully unnormalized
    view-object instances. *)

open Relational

type t = private {
  name : string;
  relations : string list;  (** base relations, joined left to right *)
  selection : Predicate.t;  (** evaluated on the join result *)
  projection : string list;  (** output attributes *)
}

val make :
  Database.t ->
  name:string ->
  relations:string list ->
  selection:Predicate.t ->
  projection:string list ->
  (t, string) result
(** Validates that the relations exist, that consecutive relations share
    at least one attribute to join on, and that selection and projection
    attributes are defined. *)

val make_exn :
  Database.t -> name:string -> relations:string list ->
  selection:Predicate.t -> projection:string list -> t

val expr : t -> Algebra.expr
(** The relational-algebra expression the view denotes. *)

val materialize : Database.t -> t -> (Algebra.rset, string) result

val rows : Database.t -> t -> Tuple.t list
(** Materialized rows ([[]] on evaluation error). *)

val base_tuples_of_row :
  Database.t -> t -> Tuple.t -> (string * Tuple.t) list
(** Provenance: for one view row (or a partial row binding at least the
    join attributes), the base tuples of each underlying relation that
    agree with the row on their shared attributes. A relation can
    contribute several tuples when the row underdetermines it. *)

val shared_attrs : Database.t -> t -> string -> string list
(** Attributes a base relation shares with the view's full join result. *)

val pp : Format.formatter -> t -> unit
