type weights = {
  ownership : float;
  reference : float;
  subset : float;
  inv_ownership : float;
  inv_reference : float;
  inv_subset : float;
}

type t = {
  weights : weights;
  threshold : float;
}

let default_weights =
  {
    ownership = 1.0;
    reference = 0.9;
    subset = 1.0;
    inv_ownership = 0.9;
    inv_reference = 0.7;
    inv_subset = 0.9;
  }

let make ?(weights = default_weights) ?(threshold = 0.5) () =
  { weights; threshold }

let default = make ()

let edge_weight m (e : Schema_graph.edge) =
  let w = m.weights in
  match e.conn.Connection.kind, e.forward with
  | Connection.Ownership, true -> w.ownership
  | Connection.Ownership, false -> w.inv_ownership
  | Connection.Reference, true -> w.reference
  | Connection.Reference, false -> w.inv_reference
  | Connection.Subset, true -> w.subset
  | Connection.Subset, false -> w.inv_subset

let path_relevance m path =
  List.fold_left (fun acc e -> acc *. edge_weight m e) 1.0 path

let epsilon = 1e-9

let relevant m r = r >= m.threshold -. epsilon

(* Best-path (max-product) relevance by exhaustive simple-path search.
   Structural schemas are small (tens of relations), and simple paths are
   what the paper's expansion step walks, so this matches the tree
   semantics exactly. *)
let relevance_map m g ~pivot =
  let best = Hashtbl.create 16 in
  let update rel r =
    match Hashtbl.find_opt best rel with
    | Some r0 when r0 >= r -> ()
    | _ -> Hashtbl.replace best rel r
  in
  let rec explore rel r on_path =
    update rel r;
    List.iter
      (fun e ->
        let next = Schema_graph.edge_to e in
        if not (List.mem next on_path) then
          let r' = r *. edge_weight m e in
          if r' > epsilon then explore next r' (next :: on_path))
      (Schema_graph.edges_from g rel)
  in
  explore pivot 1.0 [ pivot ];
  Hashtbl.fold (fun rel r acc -> (rel, r) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let relevant_relations m g ~pivot =
  List.filter_map
    (fun (rel, r) -> if relevant m r then Some rel else None)
    (relevance_map m g ~pivot)
