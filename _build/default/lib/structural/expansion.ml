type node = {
  label : string;
  relation : string;
  via : Schema_graph.edge option;
  relevance : float;
  children : node list;
}

let expand metric g ~pivot =
  if not (Schema_graph.mem_relation g pivot) then
    invalid_arg (Fmt.str "expand: unknown pivot relation %s" pivot);
  let counts = Hashtbl.create 16 in
  let next_label rel =
    let n = Option.value (Hashtbl.find_opt counts rel) ~default:0 + 1 in
    Hashtbl.replace counts rel n;
    if n = 1 then rel else Fmt.str "%s#%d" rel n
  in
  let rec build rel via relevance on_path =
    let label = next_label rel in
    let children =
      List.filter_map
        (fun e ->
          let target = Schema_graph.edge_to e in
          let r = relevance *. Metric.edge_weight metric e in
          if List.mem target on_path then None
          else if not (Metric.relevant metric r) then None
          else Some (build target (Some e) r (target :: on_path)))
        (Schema_graph.edges_from g rel)
    in
    { label; relation = rel; via; relevance; children }
  in
  build pivot None 1.0 [ pivot ]

let rec size n = 1 + List.fold_left (fun acc c -> acc + size c) 0 n.children

let rec depth n =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 n.children

let rec preorder n = n :: List.concat_map preorder n.children

let labels n = List.map (fun n -> n.label) (preorder n)

let find n label = List.find_opt (fun n -> n.label = label) (preorder n)

let copies n rel =
  List.length (List.filter (fun n -> n.relation = rel) (preorder n))

let path_to root label =
  let rec go acc n =
    let acc = n :: acc in
    if n.label = label then Some (List.rev acc)
    else List.find_map (go acc) n.children
  in
  go [] root

let edge_tag = function
  | None -> ""
  | Some (e : Schema_graph.edge) ->
      let kind = Connection.kind_name e.conn.Connection.kind in
      Fmt.str " <-%s%s-" (if e.forward then "" else "inverse ") kind

let to_ascii root =
  let buf = Buffer.create 256 in
  let rec go indent n =
    Buffer.add_string buf
      (Fmt.str "%s%s%s [%.3f]\n" indent n.label (edge_tag n.via) n.relevance);
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" root;
  Buffer.contents buf

let pp ppf n = Fmt.string ppf (to_ascii n)
