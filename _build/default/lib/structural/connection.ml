open Relational

type kind =
  | Ownership
  | Reference
  | Subset

type t = {
  kind : kind;
  source : string;
  target : string;
  source_attrs : string list;
  target_attrs : string list;
}

let make ~kind ~source ~target ~source_attrs ~target_attrs =
  { kind; source; target; source_attrs; target_attrs }

let ownership source target ~on:(source_attrs, target_attrs) =
  make ~kind:Ownership ~source ~target ~source_attrs ~target_attrs

let reference source target ~on:(source_attrs, target_attrs) =
  make ~kind:Reference ~source ~target ~source_attrs ~target_attrs

let subset source target ~on:(source_attrs, target_attrs) =
  make ~kind:Subset ~source ~target ~source_attrs ~target_attrs

let kind_name = function
  | Ownership -> "ownership"
  | Reference -> "reference"
  | Subset -> "subset"

let cardinality = function
  | Ownership -> "1:n"
  | Reference -> "n:1"
  | Subset -> "1:[0,1]"

let symbol = function
  | Ownership -> "--*"
  | Reference -> "-->"
  | Subset -> "=-->"

let id c =
  Fmt.str "%s->%s:%s(%s;%s)" c.source c.target (kind_name c.kind)
    (String.concat "," c.source_attrs)
    (String.concat "," c.target_attrs)

let equal a b = id a = id b

let same_set l1 l2 =
  List.sort String.compare l1 = List.sort String.compare l2

let strict_subset l1 l2 =
  List.for_all (fun x -> List.mem x l2) l1
  && List.exists (fun x -> not (List.mem x l1)) l2

let subset_of l1 l2 = List.for_all (fun x -> List.mem x l2) l1

let validate ~schema_of c =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  match schema_of c.source, schema_of c.target with
  | None, _ -> fail "connection %s: unknown source relation %s" (id c) c.source
  | _, None -> fail "connection %s: unknown target relation %s" (id c) c.target
  | Some s1, Some s2 ->
      if c.source_attrs = [] then fail "connection %s: empty attribute list" (id c)
      else if List.length c.source_attrs <> List.length c.target_attrs then
        fail "connection %s: X1 and X2 have different arities" (id c)
      else (
        match
          List.find_opt (fun a -> not (Schema.mem s1 a)) c.source_attrs
        with
        | Some a -> fail "connection %s: %s has no attribute %s" (id c) c.source a
        | None -> (
            match
              List.find_opt (fun a -> not (Schema.mem s2 a)) c.target_attrs
            with
            | Some a -> fail "connection %s: %s has no attribute %s" (id c) c.target a
            | None ->
                let domains_agree =
                  List.for_all2
                    (fun a1 a2 -> Schema.domain_of s1 a1 = Schema.domain_of s2 a2)
                    c.source_attrs c.target_attrs
                in
                if not domains_agree then
                  fail "connection %s: domain mismatch between X1 and X2" (id c)
                else
                  let k1 = Schema.key_attributes s1
                  and nk1 = Schema.nonkey_attributes s1
                  and k2 = Schema.key_attributes s2 in
                  (match c.kind with
                  | Ownership ->
                      if not (same_set c.source_attrs k1) then
                        fail "ownership %s: X1 must equal K(%s)" (id c) c.source
                      else if not (strict_subset c.target_attrs k2) then
                        fail
                          "ownership %s: X2 must be a proper subset of K(%s)"
                          (id c) c.target
                      else Ok ()
                  | Reference ->
                      if
                        not
                          (subset_of c.source_attrs k1
                          || subset_of c.source_attrs nk1)
                      then
                        fail
                          "reference %s: X1 must lie within K(%s) or within NK(%s)"
                          (id c) c.source c.source
                      else if not (same_set c.target_attrs k2) then
                        fail "reference %s: X2 must equal K(%s)" (id c) c.target
                      else Ok ()
                  | Subset ->
                      if not (same_set c.source_attrs k1) then
                        fail "subset %s: X1 must equal K(%s)" (id c) c.source
                      else if not (same_set c.target_attrs k2) then
                        fail "subset %s: X2 must equal K(%s)" (id c) c.target
                      else Ok ())))

let connected c t1 t2 = Tuple.matches ~on:(c.source_attrs, c.target_attrs) t1 t2

let pp ppf c =
  Fmt.pf ppf "%s %s %s on (%a; %a)" c.source (symbol c.kind) c.target
    Fmt.(list ~sep:(any ",") string)
    c.source_attrs
    Fmt.(list ~sep:(any ",") string)
    c.target_attrs
