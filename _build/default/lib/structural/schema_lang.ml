open Relational
open Sql_lexer

let ( let* ) = Result.bind

let err expected got =
  Error (Fmt.str "schema parse error: expected %s, got %a" expected pp_token got)

let peek = function [] -> Eof | t :: _ -> t
let advance = function [] -> [] | _ :: rest -> rest

let expect tok toks =
  if equal_token (peek toks) tok then Ok ((), advance toks)
  else err (Fmt.str "%a" pp_token tok) (peek toks)

let ident toks =
  match peek toks with
  | Ident s -> Ok (s, advance toks)
  | t -> err "identifier" t

let rec idents_sep_comma toks =
  let* a, toks = ident toks in
  if equal_token (peek toks) Comma then
    let* rest, toks = idents_sep_comma (advance toks) in
    Ok (a :: rest, toks)
  else Ok ([ a ], toks)

(* relation NAME '(' col (',' col)* ')' KEY '(' ids ')' ';' *)
let relation_decl toks =
  let* name, toks = ident toks in
  let* (), toks = expect Lparen toks in
  let rec columns toks =
    let* c, toks = ident toks in
    let* d, toks = ident toks in
    let* dom =
      match Value.domain_of_name d with
      | Some dom -> Ok dom
      | None -> Error (Fmt.str "schema parse error: unknown domain %s" d)
    in
    let col = Attribute.make c dom in
    if equal_token (peek toks) Comma then
      let* rest, toks = columns (advance toks) in
      Ok (col :: rest, toks)
    else Ok ([ col ], toks)
  in
  let* attributes, toks = columns toks in
  let* (), toks = expect Rparen toks in
  let* (), toks = expect (Kw "key") toks in
  let* (), toks = expect Lparen toks in
  let* key, toks = idents_sep_comma toks in
  let* (), toks = expect Rparen toks in
  let* schema = Schema.make ~name ~attributes ~key in
  Ok (schema, toks)

(* <kind> SRC TGT on '(' ids ';' ids ')' ';' *)
let connection_decl kind toks =
  let* source, toks = ident toks in
  let* target, toks = ident toks in
  let* (), toks =
    match peek toks with
    | Ident "on" -> Ok ((), advance toks)
    | t -> err "on" t
  in
  let* (), toks = expect Lparen toks in
  let* source_attrs, toks = idents_sep_comma toks in
  let* (), toks = expect Semicolon toks in
  let* target_attrs, toks = idents_sep_comma toks in
  let* (), toks = expect Rparen toks in
  Ok (Connection.make ~kind ~source ~target ~source_attrs ~target_attrs, toks)

let parse input =
  let* toks = Sql_lexer.tokenize input in
  let rec go schemas conns toks =
    match peek toks with
    | Eof -> Ok (List.rev schemas, List.rev conns)
    | Semicolon -> go schemas conns (advance toks)
    | Ident "relation" ->
        let* s, toks = relation_decl (advance toks) in
        let* (), toks = expect Semicolon toks in
        go (s :: schemas) conns toks
    | Ident "ownership" ->
        let* c, toks = connection_decl Connection.Ownership (advance toks) in
        let* (), toks = expect Semicolon toks in
        go schemas (c :: conns) toks
    | Ident "reference" ->
        let* c, toks = connection_decl Connection.Reference (advance toks) in
        let* (), toks = expect Semicolon toks in
        go schemas (c :: conns) toks
    | Ident "subset" ->
        let* c, toks = connection_decl Connection.Subset (advance toks) in
        let* (), toks = expect Semicolon toks in
        go schemas (c :: conns) toks
    | t -> err "relation, ownership, reference or subset" t
  in
  let* schemas, conns = go [] [] toks in
  Schema_graph.make schemas conns

let render g =
  let buf = Buffer.create 512 in
  List.iter
    (fun rel ->
      let s = Schema_graph.schema_exn g rel in
      Buffer.add_string buf
        (Fmt.str "relation %s (%s) key (%s);\n" rel
           (String.concat ", "
              (List.map
                 (fun (a : Attribute.t) ->
                   Fmt.str "%s %s" a.Attribute.name
                     (Value.domain_name a.Attribute.domain))
                 s.Schema.attributes))
           (String.concat ", " (Schema.key_attributes s))))
    (Schema_graph.relations g);
  Buffer.add_char buf '\n';
  List.iter
    (fun (c : Connection.t) ->
      Buffer.add_string buf
        (Fmt.str "%s %s %s on (%s ; %s);\n"
           (Connection.kind_name c.Connection.kind)
           c.Connection.source c.Connection.target
           (String.concat ", " c.Connection.source_attrs)
           (String.concat ", " c.Connection.target_attrs)))
    (Schema_graph.connections g);
  Buffer.contents buf
