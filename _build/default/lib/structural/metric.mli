(** Information metric over the structural schema.

    The paper applies "an information-metric model for specifying which
    relations can be included in a particular object given that object's
    pivot relation" (Section 3); the metric itself lives in the thesis
    [4], which is not available. We implement the standard surrogate
    documented in DESIGN.md: each traversal direction of each connection
    kind carries a weight in (0, 1]; the relevance of a path is the
    product of its edge weights; the relevance of a relation is its
    best-path relevance from the pivot; relations below a threshold are
    "no longer relevant". The default weights reproduce Figure 2 of the
    paper on the university schema. *)

type weights = {
  ownership : float;  (** R1 --* R2 walked forward *)
  reference : float;
  subset : float;
  inv_ownership : float;  (** owned-to-owner direction *)
  inv_reference : float;
  inv_subset : float;
}

type t = {
  weights : weights;
  threshold : float;
}

val default_weights : weights
(** own 1.0 / ref 0.9 / subset 1.0, inverse 0.9 / 0.7 / 0.9. *)

val default : t
(** Default weights with threshold 0.5. *)

val make : ?weights:weights -> ?threshold:float -> unit -> t

val edge_weight : t -> Schema_graph.edge -> float

val path_relevance : t -> Schema_graph.edge list -> float
(** Product of edge weights (1.0 for the empty path). *)

val relevant : t -> float -> bool
(** [relevant m r] iff [r >= m.threshold] (with a small epsilon so that
    paths computed in either association order agree). *)

val relevance_map : t -> Schema_graph.t -> pivot:string -> (string * float) list
(** Best-path relevance of every relation reachable from the pivot,
    sorted by name. The pivot itself has relevance 1.0. Paths may not
    revisit a relation. *)

val relevant_relations : t -> Schema_graph.t -> pivot:string -> string list
(** Relations whose best-path relevance passes the threshold — the
    vertex set of the Fig. 2a subgraph [G]. *)
