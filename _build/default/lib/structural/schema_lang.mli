(** A textual language for structural schemas — relations plus typed
    connections — so a whole database design can be declared without
    writing OCaml:

    {v
    relation DEPARTMENT (dept_name string, building string, budget int)
      key (dept_name);
    relation COURSES (course_id string, title string, units int,
      level string, dept_name string) key (course_id);
    relation GRADES (course_id string, pid int, grade string)
      key (course_id, pid);

    reference COURSES DEPARTMENT on (dept_name ; dept_name);
    ownership COURSES GRADES on (course_id ; course_id);
    v}

    Declarations end with [';']. Connection declarations read
    [<kind> <source> <target> on (X1 ; X2)] with the Def. 2.1 attribute
    lists comma-separated on each side. Line comments are not supported
    (the tokenizer is shared with the SQL layer). *)

val parse : string -> (Schema_graph.t, string) result
(** Parse and validate a whole schema script (every connection is checked
    against Defs. 2.2–2.4). *)

val render : Schema_graph.t -> string
(** Render a graph back to the language ([parse] of the result yields an
    equal graph). *)
