(** Expansion of the relevant subgraph into the tree of relations
    (Figure 2(a) → 2(b) of the paper).

    "We expand all the paths in G emanating from the pivot relation until
    either we can go no further without creating a cycle or we reach a
    relation that is no longer relevant." A relation reachable along
    several non-cyclic paths therefore appears as several {e copies}
    (Figure 2(b) has two copies of PEOPLE); copies get distinct labels
    ([PEOPLE], [PEOPLE#2], ...). The resulting tree lists every possible
    configuration of view objects anchored on the pivot. *)

type node = {
  label : string;  (** unique within the tree; first copy is the bare name *)
  relation : string;
  via : Schema_graph.edge option;  (** edge from the parent; [None] at the root *)
  relevance : float;  (** path relevance from the pivot *)
  children : node list;
}

val expand : Metric.t -> Schema_graph.t -> pivot:string -> node
(** Depth-first expansion. Children are ordered deterministically
    (forward connections before inverse, then by connection id). A child
    is expanded when its relation is not already on the root path and its
    path relevance passes the metric threshold.

    @raise Invalid_argument if the pivot is not in the graph. *)

val size : node -> int
val depth : node -> int
val labels : node -> string list
(** Pre-order. *)

val find : node -> string -> node option
(** Find a node by label. *)

val copies : node -> string -> int
(** Number of copies of the given relation in the tree. *)

val path_to : node -> string -> node list option
(** Root-to-node path (inclusive) for a label. *)

val to_ascii : node -> string
(** Indented tree rendering, used to reproduce Figure 2(b). *)

val pp : Format.formatter -> node -> unit
