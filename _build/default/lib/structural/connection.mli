(** Connections of the structural model (Section 2 of the paper).

    A connection relates two relations through ordered attribute lists
    [(X1, X2)] of equal arity and matching domains (Def. 2.1). The three
    kinds carry distinct integrity rules and key constraints:

    - {b Ownership} [R1 —* R2] (Def. 2.2): 1:n dependency. [X1 = K(R1)]
      and [X2] a proper subset of [K(R2)]. Deleting an owner cascades.
    - {b Reference} [R1 —> R2] (Def. 2.3): n:1. [X1] lies entirely within
      [K(R1)] or within [NK(R1)]; [X2 = K(R2)]. Referencing attributes may
      be [Null].
    - {b Subset} [R1 =—> R2] (Def. 2.4): 1:[0,1] specialization.
      [X1 = K(R1)] and [X2 = K(R2)]. *)

type kind =
  | Ownership
  | Reference
  | Subset

type t = private {
  kind : kind;
  source : string;  (** R1 *)
  target : string;  (** R2 *)
  source_attrs : string list;  (** X1, attributes of R1 *)
  target_attrs : string list;  (** X2, attributes of R2 *)
}

val make :
  kind:kind ->
  source:string ->
  target:string ->
  source_attrs:string list ->
  target_attrs:string list ->
  t
(** Construct without schema validation (validated when installed in a
    {!Schema_graph.t}). *)

val ownership : string -> string -> on:(string list * string list) -> t
val reference : string -> string -> on:(string list * string list) -> t
val subset : string -> string -> on:(string list * string list) -> t

val validate :
  schema_of:(string -> Relational.Schema.t option) -> t -> (unit, string) result
(** Full Def. 2.2–2.4 checking: endpoints exist, arity, positional domain
    agreement, and the per-kind key constraints. *)

val connected : t -> Relational.Tuple.t -> Relational.Tuple.t -> bool
(** [connected c t1 t2]: the Def. 2.1 tuple-connection test — values of
    [X1] in [t1] match values of [X2] in [t2] (non-null). *)

val kind_name : kind -> string
val cardinality : kind -> string
(** ["1:n"], ["n:1"] or ["1:[0,1]"]. *)

val symbol : kind -> string
(** Graphical symbol used in the paper: ["--*"], ["-->"], ["=-->"]. *)

val id : t -> string
(** Stable identifier ["R1->R2:kind(X1;X2)"], used for translator lookup
    and deduplication. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
