lib/structural/expansion.ml: Buffer Connection Fmt Hashtbl List Metric Option Schema_graph
