lib/structural/schema_lang.ml: Attribute Buffer Connection Fmt List Relational Result Schema Schema_graph Sql_lexer String Value
