lib/structural/schema_graph.ml: Buffer Connection Database Fmt List Map Relational Result Schema String
