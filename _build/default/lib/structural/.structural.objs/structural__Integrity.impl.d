lib/structural/integrity.ml: Connection Database Fmt List Op Predicate Relation Relational Result Schema Schema_graph String Tuple Value
