lib/structural/integrity.mli: Connection Database Format Op Relational Schema_graph Tuple
