lib/structural/schema_lang.mli: Schema_graph
