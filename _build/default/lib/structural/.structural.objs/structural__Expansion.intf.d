lib/structural/expansion.mli: Format Metric Schema_graph
