lib/structural/connection.mli: Format Relational
