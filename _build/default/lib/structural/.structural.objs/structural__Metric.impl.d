lib/structural/metric.ml: Connection Hashtbl List Schema_graph String
