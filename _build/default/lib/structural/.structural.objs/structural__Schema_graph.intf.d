lib/structural/schema_graph.mli: Connection Format Relational
