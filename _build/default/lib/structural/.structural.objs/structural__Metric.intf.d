lib/structural/metric.mli: Schema_graph
