lib/structural/connection.ml: Fmt List Relational Schema String Tuple
