(** JSON rendering of view-object instances — the shape applications
    consume: one object per instance, atomic attributes as scalars,
    singleton children (n:1 references, subsets) as nested objects, and
    set-valued children as arrays.

    Children are keyed by node label; a child that is structurally
    singular (at most one sub-instance) renders as an object or [null],
    others as arrays. The rendering is schema-driven via the
    {!Viewobject.Definition.t} so the distinction is stable even when a
    set-valued child happens to hold one element. *)

open Viewobject

val value : Relational.Value.t -> string
(** Scalar rendering: numbers bare, strings escaped per RFC 8259, null. *)

val instance : Definition.t -> Instance.t -> string
val instances : Definition.t -> Instance.t list -> string
(** A JSON array of {!instance} objects. *)
