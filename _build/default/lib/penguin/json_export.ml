open Relational
open Structural
open Viewobject

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let value = function
  | Value.Null -> "null"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Value.float_to_string f
  | Value.Str s -> escape_string s
  | Value.Bool b -> string_of_bool b

(* A child node is structurally singular when its last connection is a
   forward reference (n:1) or forward subset (1:[0,1]). *)
let singular (cn : Definition.node) =
  match List.rev cn.Definition.path with
  | [] -> false
  | last :: _ -> (
      last.Schema_graph.forward
      &&
      match last.Schema_graph.conn.Connection.kind with
      | Connection.Reference | Connection.Subset -> true
      | Connection.Ownership -> false)

let rec render buf (dn : Definition.node) (i : Instance.t) =
  Buffer.add_char buf '{';
  let first = ref true in
  let comma () =
    if !first then first := false else Buffer.add_char buf ','
  in
  List.iter
    (fun a ->
      comma ();
      Buffer.add_string buf (escape_string a);
      Buffer.add_char buf ':';
      Buffer.add_string buf (value (Tuple.get i.Instance.tuple a)))
    dn.Definition.attrs;
  List.iter
    (fun (cn : Definition.node) ->
      comma ();
      Buffer.add_string buf (escape_string cn.Definition.label);
      Buffer.add_char buf ':';
      let subs = Instance.children_of i cn.Definition.label in
      if singular cn then (
        match subs with
        | [] -> Buffer.add_string buf "null"
        | sub :: _ -> render buf cn sub)
      else begin
        Buffer.add_char buf '[';
        List.iteri
          (fun j sub ->
            if j > 0 then Buffer.add_char buf ',';
            render buf cn sub)
          subs;
        Buffer.add_char buf ']'
      end)
    dn.Definition.children;
  Buffer.add_char buf '}'

let instance (vo : Definition.t) i =
  let buf = Buffer.create 256 in
  render buf vo.Definition.root i;
  Buffer.contents buf

let instances vo is =
  "[" ^ String.concat "," (List.map (instance vo) is) ^ "]"
