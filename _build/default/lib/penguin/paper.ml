open Structural
open Viewobject

let figure1 () =
  Fmt.str "%a@.@.%s" Schema_graph.pp University.graph
    (Schema_graph.to_dot University.graph)

let figure2a () =
  let sub =
    Generate.relevant_subgraph Metric.default University.graph ~pivot:"COURSES"
  in
  Fmt.str "Relevant subgraph G (pivot COURSES):@.%a" Schema_graph.pp sub

let figure2b () =
  let tree = Generate.tree Metric.default University.graph ~pivot:"COURSES" in
  "Expansion tree T (pivot COURSES):\n" ^ Expansion.to_ascii tree

let figure2c () =
  "View object omega (complexity "
  ^ string_of_int (Definition.complexity University.omega)
  ^ "):\n"
  ^ Definition.to_ascii University.omega

let figure3 () =
  "View object omega' :\n" ^ Definition.to_ascii University.omega_prime

let figure4 () =
  let db = University.seeded_db () in
  let q =
    Vo_query.C_and
      ( Vo_query.C_node ("COURSES", Relational.Predicate.eq_str "level" "grad"),
        Vo_query.C_count (University.student_label, Relational.Predicate.Lt, 5) )
  in
  let instances = Vo_query.run db University.omega q in
  Fmt.str
    "Query: graduate courses with less than 5 students enrolled@.%d instance(s):@.%s"
    (List.length instances)
    (String.concat "\n" (List.map Instance.to_ascii instances))

let dialog_with answers =
  let _spec, events =
    Vo_core.Dialog.choose ~ask_insertion:false ~ask_deletion:false
      University.graph University.omega
      (Vo_core.Dialog.scripted answers)
  in
  Vo_core.Dialog.transcript events

let section6_dialog () = dialog_with Vo_core.Dialog.paper_omega_answers

let section6_dialog_restrictive () =
  dialog_with Vo_core.Dialog.restrictive_department_answers

let ees345_example () =
  let db = University.seeded_db () in
  let old_i = University.cs345_instance db in
  let new_i = University.ees345_replacement old_i in
  let request =
    Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i
  in
  let run name spec =
    let outcome =
      Vo_core.Engine.apply University.graph db University.omega spec request
    in
    Fmt.str "--- %s translator ---@.%a" name Vo_core.Engine.pp_outcome outcome
  in
  String.concat "\n"
    [
      "Replacement request: course CS345 becomes EES345 in the (new)";
      "department \"Engineering Economic Systems\".";
      run "permissive (paper Section 6)" University.omega_translator;
      run "restrictive (DEPARTMENT not modifiable)"
        University.omega_translator_restrictive;
    ]

let all () =
  [
    "Figure 1 - structural schema", figure1 ();
    "Figure 2(a) - relevant subgraph", figure2a ();
    "Figure 2(b) - expansion tree", figure2b ();
    "Figure 2(c) - view object omega", figure2c ();
    "Figure 3 - view object omega'", figure3 ();
    "Figure 4 - instantiation", figure4 ();
    "Section 6 - translator dialog (paper answers)", section6_dialog ();
    "Section 6 - dialog with DEPARTMENT locked (footnote 5)",
    section6_dialog_restrictive ();
    "Section 6 - EES345 replacement under both translators", ees345_example ();
  ]
