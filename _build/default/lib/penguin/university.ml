open Relational
open Structural
open Viewobject

let schema name attributes key = Schema.make_exn ~name ~attributes ~key

let department =
  schema "DEPARTMENT"
    [ Attribute.str "dept_name"; Attribute.str "building"; Attribute.int "budget" ]
    [ "dept_name" ]

let people =
  schema "PEOPLE"
    [ Attribute.int "pid"; Attribute.str "name"; Attribute.str "dept_name" ]
    [ "pid" ]

let student =
  schema "STUDENT"
    [ Attribute.int "pid"; Attribute.str "degree_program"; Attribute.int "year" ]
    [ "pid" ]

let faculty =
  schema "FACULTY"
    [ Attribute.int "pid"; Attribute.str "rank"; Attribute.str "office" ]
    [ "pid" ]

let staff =
  schema "STAFF" [ Attribute.int "pid"; Attribute.str "title" ] [ "pid" ]

let courses =
  schema "COURSES"
    [ Attribute.str "course_id"; Attribute.str "title"; Attribute.int "units";
      Attribute.str "level"; Attribute.str "dept_name" ]
    [ "course_id" ]

let curriculum =
  schema "CURRICULUM"
    [ Attribute.str "degree"; Attribute.str "course_id"; Attribute.str "requirement" ]
    [ "degree"; "course_id" ]

let grades =
  schema "GRADES"
    [ Attribute.str "course_id"; Attribute.int "pid"; Attribute.str "grade" ]
    [ "course_id"; "pid" ]

let graph =
  Schema_graph.make_exn
    [ department; people; student; faculty; staff; courses; curriculum; grades ]
    [
      Connection.reference "PEOPLE" "DEPARTMENT" ~on:([ "dept_name" ], [ "dept_name" ]);
      Connection.reference "COURSES" "DEPARTMENT" ~on:([ "dept_name" ], [ "dept_name" ]);
      Connection.subset "PEOPLE" "STUDENT" ~on:([ "pid" ], [ "pid" ]);
      Connection.subset "PEOPLE" "FACULTY" ~on:([ "pid" ], [ "pid" ]);
      Connection.subset "PEOPLE" "STAFF" ~on:([ "pid" ], [ "pid" ]);
      Connection.reference "CURRICULUM" "COURSES" ~on:([ "course_id" ], [ "course_id" ]);
      Connection.ownership "COURSES" "GRADES" ~on:([ "course_id" ], [ "course_id" ]);
      Connection.reference "GRADES" "STUDENT" ~on:([ "pid" ], [ "pid" ]);
    ]

let seed_sql =
  {|
  INSERT INTO DEPARTMENT VALUES ('Computer Science', 'Gates', 5000000);
  INSERT INTO DEPARTMENT VALUES ('Mathematics', 'Sloan', 2000000);
  INSERT INTO DEPARTMENT VALUES ('Electrical Engineering', 'Packard', 3500000);

  INSERT INTO PEOPLE VALUES (1, 'Ada Adams', 'Computer Science');
  INSERT INTO PEOPLE VALUES (2, 'Ben Barton', 'Computer Science');
  INSERT INTO PEOPLE VALUES (3, 'Cathy Cole', 'Mathematics');
  INSERT INTO PEOPLE VALUES (4, 'Dan Duval', 'Electrical Engineering');
  INSERT INTO PEOPLE VALUES (5, 'Eve Evans', 'Computer Science');
  INSERT INTO PEOPLE VALUES (6, 'Finn Ford', 'Computer Science');
  INSERT INTO PEOPLE VALUES (7, 'Grace Gray', 'Computer Science');
  INSERT INTO PEOPLE VALUES (8, 'Hugh Holt', 'Mathematics');
  INSERT INTO PEOPLE VALUES (9, 'Iris Ives', 'Computer Science');

  INSERT INTO STUDENT VALUES (1, 'MS CS', 2);
  INSERT INTO STUDENT VALUES (2, 'PhD CS', 4);
  INSERT INTO STUDENT VALUES (3, 'BS Math', 3);
  INSERT INTO STUDENT VALUES (4, 'MS EE', 1);
  INSERT INTO STUDENT VALUES (5, 'PhD CS', 2);
  INSERT INTO STUDENT VALUES (6, 'BS CS', 1);

  INSERT INTO FACULTY VALUES (7, 'Professor', 'G-101');
  INSERT INTO FACULTY VALUES (8, 'Associate Professor', 'S-202');

  INSERT INTO STAFF VALUES (9, 'Administrator');

  INSERT INTO COURSES VALUES ('CS345', 'Database Systems', 3, 'grad', 'Computer Science');
  INSERT INTO COURSES VALUES ('CS101', 'Intro Programming', 5, 'undergrad', 'Computer Science');
  INSERT INTO COURSES VALUES ('MATH51', 'Linear Algebra', 4, 'undergrad', 'Mathematics');
  INSERT INTO COURSES VALUES ('EE280', 'Embedded Systems', 3, 'grad', 'Electrical Engineering');

  INSERT INTO GRADES VALUES ('CS345', 1, 'A');
  INSERT INTO GRADES VALUES ('CS345', 2, 'B+');
  INSERT INTO GRADES VALUES ('CS101', 1, 'A-');
  INSERT INTO GRADES VALUES ('CS101', 3, 'B');
  INSERT INTO GRADES VALUES ('CS101', 4, 'A');
  INSERT INTO GRADES VALUES ('CS101', 6, 'B+');
  INSERT INTO GRADES VALUES ('MATH51', 3, 'A');
  INSERT INTO GRADES VALUES ('EE280', 1, 'B');
  INSERT INTO GRADES VALUES ('EE280', 2, 'A-');
  INSERT INTO GRADES VALUES ('EE280', 4, 'A');
  INSERT INTO GRADES VALUES ('EE280', 5, 'B');
  INSERT INTO GRADES VALUES ('EE280', 6, 'A-');

  INSERT INTO CURRICULUM VALUES ('MS CS', 'CS345', 'core');
  INSERT INTO CURRICULUM VALUES ('PhD CS', 'CS345', 'elective');
  INSERT INTO CURRICULUM VALUES ('BS CS', 'CS101', 'core');
  INSERT INTO CURRICULUM VALUES ('MS EE', 'EE280', 'core');
  INSERT INTO CURRICULUM VALUES ('BS Math', 'MATH51', 'core');
  |}

let seeded_db () =
  let db = Schema_graph.create_database graph in
  match Sql.run_script db seed_sql with
  | Ok (db, _) -> db
  | Error e -> invalid_arg ("university seed data: " ^ e)

(* Labels assigned by the deterministic expansion (see DESIGN.md): the
   STUDENT copy under GRADES is STUDENT#2, the FACULTY copy under
   DEPARTMENT-PEOPLE is FACULTY. *)
let student_label = "STUDENT#2"
let faculty_label = "FACULTY"

let omega_keep =
  [
    "COURSES", [ "course_id"; "title"; "units"; "level" ];
    "DEPARTMENT", [ "dept_name"; "building" ];
    "CURRICULUM", [ "degree"; "requirement" ];
    "GRADES", [ "pid"; "grade" ];
    student_label, [ "pid"; "degree_program"; "year" ];
  ]

let omega =
  let tree = Generate.tree Metric.default graph ~pivot:"COURSES" in
  match Generate.prune graph tree ~name:"omega" ~keep:omega_keep with
  | Ok vo -> vo
  | Error e -> invalid_arg ("omega: " ^ e)

let omega_prime =
  let tree = Generate.tree Metric.default graph ~pivot:"COURSES" in
  match
    Generate.prune graph tree ~name:"omega_prime"
      ~keep:
        [
          "COURSES", [ "course_id"; "title"; "units"; "level" ];
          faculty_label, [ "pid"; "rank"; "office" ];
          student_label, [ "pid"; "degree_program"; "year" ];
        ]
  with
  | Ok vo -> vo
  | Error e -> invalid_arg ("omega_prime: " ^ e)

let omega_translator =
  let spec, _ =
    Vo_core.Dialog.choose graph omega
      (Vo_core.Dialog.scripted Vo_core.Dialog.paper_omega_answers)
  in
  spec

let omega_translator_restrictive =
  let spec, _ =
    Vo_core.Dialog.choose graph omega
      (Vo_core.Dialog.scripted Vo_core.Dialog.restrictive_department_answers)
  in
  spec

let workspace () =
  let ws = Workspace.create graph in
  let ws = Workspace.with_db ws (seeded_db ()) in
  let ws =
    {
      ws with
      Workspace.objects = [ "omega", omega; "omega_prime", omega_prime ];
      translators =
        [
          "omega", omega_translator;
          "omega_prime",
          Vo_core.Translator_spec.permissive ~object_name:"omega_prime";
        ];
    }
  in
  ws

let cs345_instance db =
  match
    Instantiate.instantiate ~where:(Predicate.eq_str "course_id" "CS345") db omega
  with
  | [ i ] -> i
  | _ -> invalid_arg "cs345_instance: CS345 not found (or not unique)"

let ees345_replacement old_inst =
  let set_course t =
    Tuple.set t "course_id" (Value.Str "EES345")
  in
  let set_dept _old =
    Tuple.make
      [ "dept_name", Value.Str "Engineering Economic Systems";
        "building", Value.Null ]
  in
  let i = { old_inst with Instance.tuple = set_course old_inst.Instance.tuple } in
  {
    i with
    Instance.children =
      List.map
        (fun (label, subs) ->
          if label = "DEPARTMENT" then
            ( label,
              List.map
                (fun (s : Instance.t) ->
                  { s with Instance.tuple = set_dept s.Instance.tuple })
                subs )
          else label, subs)
        i.Instance.children;
  }
