(** A CAD parts-and-assemblies database (cf. reference [5] of the paper,
    "Complex objects for relational databases", which appeared in a CAD
    special issue — engineering design was the other driving domain for
    view objects).

    Six relations: PROJECT, SUPPLIER, PART, ASSEMBLY, COMPONENT, DRAWING.
    The assembly object shows an island with {e two} ownership branches
    (COMPONENT and DRAWING under ASSEMBLY) and a reference chain leaving
    the island (COMPONENT —> PART —> SUPPLIER); it has no referencing
    peninsula, the contrasting case to ω and the patient record. *)

open Structural
open Viewobject

val graph : Schema_graph.t
val seeded_db : unit -> Relational.Database.t

val assembly_object : Definition.t
(** Pivot ASSEMBLY; island ASSEMBLY/COMPONENT/DRAWING; PROJECT, PART,
    SUPPLIER outside. *)

val assembly_translator : Vo_core.Translator_spec.t
(** Parts and suppliers are catalog data: reusable and modifiable but not
    insertable through the object; projects are fully managed. *)

val workspace : unit -> Workspace.t
val assembly_instance : Relational.Database.t -> string -> Instance.t
(** Assembly by id. @raise Invalid_argument when absent. *)
