(** The university database of the paper (Figures 1–4, Section 6).

    Eight relations — DEPARTMENT, PEOPLE, STUDENT, FACULTY, STAFF,
    CURRICULUM, COURSES, GRADES — and the connections the paper
    describes: courses and people relate to a department (references), a
    person is either a student, a faculty, or a staff (subsets), a
    curriculum describes the required courses for a given degree
    (reference into COURSES), and grades are associated with courses and
    students (COURSES owns GRADES, GRADES references STUDENT). *)

open Structural
open Viewobject

val graph : Schema_graph.t
(** The structural schema of Figure 1. *)

val seeded_db : unit -> Relational.Database.t
(** Populated with sample data arranged so that exactly one graduate
    course (CS345) has fewer than 5 students enrolled — reproducing
    Figure 4's single-instance result. *)

val workspace : unit -> Workspace.t
(** Seeded workspace with ω and ω′ installed: ω carries the paper's
    Section 6 translator, ω′ the permissive default. *)

val omega_keep : (string * string list) list
(** The pruning (tree label → projection) that produces ω from the
    expansion tree — exposed for the generation benchmarks. *)

val omega : Definition.t
(** The course-information object of Figure 2(c): COURSES (pivot) with
    DEPARTMENT, CURRICULUM, GRADES, and STUDENT (under GRADES). *)

val omega_prime : Definition.t
(** The alternate object of Figure 3: COURSES with FACULTY (through the
    DEPARTMENT–PEOPLE path) and STUDENT (through GRADES, which is not
    part of ω′ — a path of two connections). *)

val omega_translator : Vo_core.Translator_spec.t
(** The translator the paper's Section 6 dialog selects for ω. *)

val omega_translator_restrictive : Vo_core.Translator_spec.t
(** The second translator of Section 6 (DEPARTMENT may not be
    modified). *)

val student_label : string
(** Label of ω's STUDENT node in the expansion tree (the copy reached
    through GRADES). *)

val faculty_label : string
(** Label of ω′'s FACULTY node (the copy reached through DEPARTMENT and
    PEOPLE). *)

val cs345_instance : Relational.Database.t -> Instance.t
(** The ω instance for course CS345 as stored in the given database.
    @raise Invalid_argument when CS345 is absent. *)

val ees345_replacement : Instance.t -> Instance.t
(** The Section 6 replacing instance: course renamed to EES345 and the
    department changed to the (new) "Engineering Economic Systems". *)
