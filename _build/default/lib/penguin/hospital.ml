open Relational
open Structural
open Viewobject

let schema name attributes key = Schema.make_exn ~name ~attributes ~key

let ward =
  schema "WARD"
    [ Attribute.str "ward_id"; Attribute.str "name"; Attribute.int "floor" ]
    [ "ward_id" ]

let physician =
  schema "PHYSICIAN"
    [ Attribute.int "phys_id"; Attribute.str "name"; Attribute.str "specialty" ]
    [ "phys_id" ]

let patient =
  schema "PATIENT"
    [ Attribute.int "mrn"; Attribute.str "name"; Attribute.str "ward_id";
      Attribute.int "attending" ]
    [ "mrn" ]

let visit =
  schema "VISIT"
    [ Attribute.int "mrn"; Attribute.int "visit_no"; Attribute.str "vdate";
      Attribute.str "reason" ]
    [ "mrn"; "visit_no" ]

let orders =
  schema "ORDERS"
    [ Attribute.int "mrn"; Attribute.int "visit_no"; Attribute.int "order_no";
      Attribute.str "drug"; Attribute.int "dose"; Attribute.int "prescriber" ]
    [ "mrn"; "visit_no"; "order_no" ]

let result =
  schema "RESULT"
    [ Attribute.int "mrn"; Attribute.int "visit_no"; Attribute.int "order_no";
      Attribute.int "result_no"; Attribute.float "value" ]
    [ "mrn"; "visit_no"; "order_no"; "result_no" ]

let appointment =
  schema "APPOINTMENT"
    [ Attribute.int "appt_id"; Attribute.int "mrn"; Attribute.int "phys_id";
      Attribute.str "adate" ]
    [ "appt_id" ]

let graph =
  Schema_graph.make_exn
    [ ward; physician; patient; visit; orders; result; appointment ]
    [
      Connection.reference "PATIENT" "WARD" ~on:([ "ward_id" ], [ "ward_id" ]);
      Connection.reference "PATIENT" "PHYSICIAN" ~on:([ "attending" ], [ "phys_id" ]);
      Connection.ownership "PATIENT" "VISIT" ~on:([ "mrn" ], [ "mrn" ]);
      Connection.ownership "VISIT" "ORDERS"
        ~on:([ "mrn"; "visit_no" ], [ "mrn"; "visit_no" ]);
      Connection.ownership "ORDERS" "RESULT"
        ~on:([ "mrn"; "visit_no"; "order_no" ], [ "mrn"; "visit_no"; "order_no" ]);
      Connection.reference "ORDERS" "PHYSICIAN" ~on:([ "prescriber" ], [ "phys_id" ]);
      Connection.reference "APPOINTMENT" "PATIENT" ~on:([ "mrn" ], [ "mrn" ]);
      Connection.reference "APPOINTMENT" "PHYSICIAN" ~on:([ "phys_id" ], [ "phys_id" ]);
    ]

let seed_sql =
  {|
  INSERT INTO WARD VALUES ('W1', 'Cardiology', 3);
  INSERT INTO WARD VALUES ('W2', 'Oncology', 4);
  INSERT INTO WARD VALUES ('W3', 'General Medicine', 2);

  INSERT INTO PHYSICIAN VALUES (100, 'Dr. House', 'Diagnostics');
  INSERT INTO PHYSICIAN VALUES (101, 'Dr. Grey', 'Cardiology');
  INSERT INTO PHYSICIAN VALUES (102, 'Dr. Wilson', 'Oncology');

  INSERT INTO PATIENT VALUES (7001, 'John Poe', 'W1', 101);
  INSERT INTO PATIENT VALUES (7002, 'Mary Moe', 'W2', 102);
  INSERT INTO PATIENT VALUES (7003, 'Rita Roe', 'W3', 100);

  INSERT INTO VISIT VALUES (7001, 1, '1990-11-02', 'chest pain');
  INSERT INTO VISIT VALUES (7001, 2, '1991-01-15', 'follow-up');
  INSERT INTO VISIT VALUES (7002, 1, '1990-12-24', 'staging');
  INSERT INTO VISIT VALUES (7003, 1, '1991-02-01', 'fatigue');

  INSERT INTO ORDERS VALUES (7001, 1, 1, 'aspirin', 100, 101);
  INSERT INTO ORDERS VALUES (7001, 1, 2, 'atenolol', 50, 101);
  INSERT INTO ORDERS VALUES (7001, 2, 1, 'atenolol', 25, 100);
  INSERT INTO ORDERS VALUES (7002, 1, 1, 'cisplatin', 70, 102);
  INSERT INTO ORDERS VALUES (7003, 1, 1, 'ferritin panel', 1, 100);

  INSERT INTO RESULT VALUES (7001, 1, 1, 1, 0.9);
  INSERT INTO RESULT VALUES (7001, 1, 2, 1, 1.2);
  INSERT INTO RESULT VALUES (7002, 1, 1, 1, 3.4);
  INSERT INTO RESULT VALUES (7003, 1, 1, 1, 12.5);

  INSERT INTO APPOINTMENT VALUES (9001, 7001, 101, '1991-03-01');
  INSERT INTO APPOINTMENT VALUES (9002, 7002, 102, '1991-03-02');
  INSERT INTO APPOINTMENT VALUES (9003, 7001, 100, '1991-04-10');
  |}

let seeded_db () =
  let db = Schema_graph.create_database graph in
  match Sql.run_script db seed_sql with
  | Ok (db, _) -> db
  | Error e -> invalid_arg ("hospital seed data: " ^ e)

(* Expansion labels (deterministic order; see Expansion): the attending
   PHYSICIAN comes first and carries inverse-reference copies of
   ORDERS/APPOINTMENT, so the ownership chain under PATIENT is labelled
   VISIT#2 / ORDERS#2 / RESULT#2 with the prescribing PHYSICIAN#2. *)
let visit_label = "VISIT#2"
let orders_label = "ORDERS#2"
let result_label = "RESULT#2"
let prescriber_label = "PHYSICIAN#2"

let patient_record =
  let tree = Generate.tree Metric.default graph ~pivot:"PATIENT" in
  match
    Generate.prune graph tree ~name:"patient_record"
      ~keep:
        [
          "PATIENT", [ "mrn"; "name"; "ward_id"; "attending" ];
          "PHYSICIAN", [ "phys_id"; "name"; "specialty" ];
          visit_label, [ "visit_no"; "vdate"; "reason" ];
          orders_label, [ "order_no"; "drug"; "dose"; "prescriber" ];
          prescriber_label, [ "phys_id"; "name" ];
          result_label, [ "result_no"; "value" ];
          "WARD", [ "ward_id"; "name"; "floor" ];
        ]
  with
  | Ok vo -> vo
  | Error e -> invalid_arg ("patient_record: " ^ e)

let record_translator =
  let open Vo_core.Translator_spec in
  let spec = permissive ~object_name:"patient_record" in
  let spec =
    List.fold_left
      (fun spec rel -> with_island_key spec rel allow_key_replace)
      spec [ "PATIENT"; "VISIT"; "ORDERS"; "RESULT" ]
  in
  let reference_data = { modifiable = true; allow_insert = false; allow_modify = false } in
  let spec = with_outside spec "PHYSICIAN" reference_data in
  let spec = with_outside spec "WARD" reference_data in
  let appt_patient =
    List.find
      (fun (c : Connection.t) ->
        c.Connection.source = "APPOINTMENT" && c.Connection.target = "PATIENT")
      (Schema_graph.connections graph)
  in
  with_reference_action spec appt_patient Structural.Integrity.Nullify

let workspace () =
  let ws = Workspace.create graph in
  let ws = Workspace.with_db ws (seeded_db ()) in
  {
    ws with
    Workspace.objects = [ "patient_record", patient_record ];
    translators = [ "patient_record", record_translator ];
  }

let patient_instance db mrn =
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_int "mrn" mrn)
      db patient_record
  with
  | [ i ] -> i
  | _ -> invalid_arg (Fmt.str "patient_instance: mrn %d not found" mrn)
