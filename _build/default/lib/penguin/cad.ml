open Relational
open Structural
open Viewobject

let schema name attributes key = Schema.make_exn ~name ~attributes ~key

let project =
  schema "PROJECT"
    [ Attribute.str "proj_id"; Attribute.str "title"; Attribute.str "owner" ]
    [ "proj_id" ]

let supplier =
  schema "SUPPLIER"
    [ Attribute.str "sup_id"; Attribute.str "name"; Attribute.str "country" ]
    [ "sup_id" ]

let part =
  schema "PART"
    [ Attribute.str "part_no"; Attribute.str "descr"; Attribute.str "sup_id" ]
    [ "part_no" ]

let assembly =
  schema "ASSEMBLY"
    [ Attribute.str "asm_id"; Attribute.str "name"; Attribute.str "proj_id" ]
    [ "asm_id" ]

let component =
  schema "COMPONENT"
    [ Attribute.str "asm_id"; Attribute.int "comp_no"; Attribute.str "part_no";
      Attribute.int "qty" ]
    [ "asm_id"; "comp_no" ]

let drawing =
  schema "DRAWING"
    [ Attribute.str "asm_id"; Attribute.int "sheet"; Attribute.str "fmt" ]
    [ "asm_id"; "sheet" ]

let graph =
  Schema_graph.make_exn
    [ project; supplier; part; assembly; component; drawing ]
    [
      Connection.reference "ASSEMBLY" "PROJECT" ~on:([ "proj_id" ], [ "proj_id" ]);
      Connection.ownership "ASSEMBLY" "COMPONENT" ~on:([ "asm_id" ], [ "asm_id" ]);
      Connection.ownership "ASSEMBLY" "DRAWING" ~on:([ "asm_id" ], [ "asm_id" ]);
      Connection.reference "COMPONENT" "PART" ~on:([ "part_no" ], [ "part_no" ]);
      Connection.reference "PART" "SUPPLIER" ~on:([ "sup_id" ], [ "sup_id" ]);
    ]

let seed_sql =
  {|
  INSERT INTO PROJECT VALUES ('P1', 'Lunar Rover', 'NASA');
  INSERT INTO PROJECT VALUES ('P2', 'Sea Probe', 'WHOI');

  INSERT INTO SUPPLIER VALUES ('S1', 'Acme Metals', 'US');
  INSERT INTO SUPPLIER VALUES ('S2', 'Bolts&Co', 'DE');

  INSERT INTO PART VALUES ('PN-100', 'titanium strut', 'S1');
  INSERT INTO PART VALUES ('PN-200', 'hex bolt', 'S2');
  INSERT INTO PART VALUES ('PN-300', 'wheel hub', 'S1');

  INSERT INTO ASSEMBLY VALUES ('A1', 'chassis', 'P1');
  INSERT INTO ASSEMBLY VALUES ('A2', 'sensor mast', 'P2');

  INSERT INTO COMPONENT VALUES ('A1', 1, 'PN-100', 4);
  INSERT INTO COMPONENT VALUES ('A1', 2, 'PN-200', 32);
  INSERT INTO COMPONENT VALUES ('A1', 3, 'PN-300', 4);
  INSERT INTO COMPONENT VALUES ('A2', 1, 'PN-200', 8);

  INSERT INTO DRAWING VALUES ('A1', 1, 'dxf');
  INSERT INTO DRAWING VALUES ('A1', 2, 'dxf');
  INSERT INTO DRAWING VALUES ('A2', 1, 'iges');
  |}

let seeded_db () =
  let db = Schema_graph.create_database graph in
  match Sql.run_script db seed_sql with
  | Ok (db, _) -> db
  | Error e -> invalid_arg ("cad seed data: " ^ e)

(* Expansion labels: ASSEMBLY, COMPONENT, PART, SUPPLIER, DRAWING,
   PROJECT. *)
let assembly_object =
  let tree = Generate.tree Metric.default graph ~pivot:"ASSEMBLY" in
  match
    Generate.prune graph tree ~name:"assembly"
      ~keep:
        [
          "ASSEMBLY", [ "asm_id"; "name"; "proj_id" ];
          "COMPONENT", [ "comp_no"; "part_no"; "qty" ];
          "PART", [ "part_no"; "descr"; "sup_id" ];
          "SUPPLIER", [ "sup_id"; "name" ];
          "DRAWING", [ "sheet"; "fmt" ];
          "PROJECT", [ "proj_id"; "title" ];
        ]
  with
  | Ok vo -> vo
  | Error e -> invalid_arg ("assembly_object: " ^ e)

let assembly_translator =
  let open Vo_core.Translator_spec in
  let spec = permissive ~object_name:"assembly" in
  let spec =
    List.fold_left
      (fun spec rel -> with_island_key spec rel allow_key_replace)
      spec [ "ASSEMBLY"; "COMPONENT"; "DRAWING" ]
  in
  let catalog = { modifiable = true; allow_insert = false; allow_modify = true } in
  let spec = with_outside spec "PART" catalog in
  let spec = with_outside spec "SUPPLIER" catalog in
  with_outside spec "PROJECT" allow_all_modification

let workspace () =
  let ws = Workspace.create graph in
  let ws = Workspace.with_db ws (seeded_db ()) in
  {
    ws with
    Workspace.objects = [ "assembly", assembly_object ];
    translators = [ "assembly", assembly_translator ];
  }

let assembly_instance db asm_id =
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "asm_id" asm_id)
      db assembly_object
  with
  | [ i ] -> i
  | _ -> invalid_arg (Fmt.str "assembly_instance: %s not found" asm_id)
