(** Reproductions of the paper's figures and transcripts (the
    "evaluation artifacts" indexed in DESIGN.md/EXPERIMENTS.md).

    Each function returns the artifact as text; the bench executable
    prints them, the golden tests assert their load-bearing properties,
    and [penguin figures] shows them on demand. *)

val figure1 : unit -> string
(** The structural schema of the university database (relations and
    connections, plus the Graphviz rendering). *)

val figure2a : unit -> string
(** The relevant subgraph G for pivot COURSES. *)

val figure2b : unit -> string
(** The expansion tree T, with its two copies of PEOPLE. *)

val figure2c : unit -> string
(** The pruned definition of ω with per-node projections. *)

val figure3 : unit -> string
(** ω′, with the COURSES→STUDENT edge shown as a two-connection path. *)

val figure4 : unit -> string
(** The instance produced by "graduate courses with less than 5 students
    having enrolled" on the seeded database. *)

val section6_dialog : unit -> string
(** The replacement portion of the translator-choice dialog for ω, with
    the paper's answers. *)

val section6_dialog_restrictive : unit -> string
(** The variant in which DEPARTMENT may not be modified (footnote 5: its
    follow-up questions disappear). *)

val ees345_example : unit -> string
(** The Section 6 replacement request run under both translators: the
    operations produced by the permissive one (including the DEPARTMENT
    insertion) and the rejection by the restrictive one. *)

val all : unit -> (string * string) list
(** Every artifact, labelled. *)
