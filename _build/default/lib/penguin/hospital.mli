(** A clinical-records database (the application domain that motivated
    PENGUIN — the original work was funded by the National Library of
    Medicine; see DESIGN.md).

    Seven relations: WARD, PHYSICIAN, PATIENT, VISIT, ORDERS, RESULT,
    APPOINTMENT. The patient-record view object has a {e deep} dependency
    island (PATIENT —* VISIT —* ORDERS —* RESULT) and a referencing
    peninsula (APPOINTMENT —> PATIENT) whose foreign key is nullable —
    exercising the [Nullify] reference action that the university schema
    cannot (CURRICULUM's foreign key is part of its key). *)

open Structural
open Viewobject

val graph : Schema_graph.t
val seeded_db : unit -> Relational.Database.t

val patient_record : Definition.t
(** Pivot PATIENT; island PATIENT/VISIT/ORDERS/RESULT; WARD, the
    attending and prescribing PHYSICIAN copies outside. *)

val visit_label : string
(** Node labels of the ownership chain in the expansion tree. *)

val orders_label : string
val result_label : string
val prescriber_label : string

val record_translator : Vo_core.Translator_spec.t
(** Clinical policy: key changes allowed on the island (except merging),
    PHYSICIAN and WARD are reference data (reusable, not insertable),
    deleting a patient nullifies appointments. *)

val workspace : unit -> Workspace.t
val patient_instance : Relational.Database.t -> int -> Instance.t
(** Patient record by MRN. @raise Invalid_argument when absent. *)
