lib/penguin/university.ml: Attribute Connection Generate Instance Instantiate List Metric Predicate Relational Schema Schema_graph Sql Structural Tuple Value Viewobject Vo_core Workspace
