lib/penguin/university.mli: Definition Instance Relational Schema_graph Structural Viewobject Vo_core Workspace
