lib/penguin/json_export.mli: Definition Instance Relational Viewobject
