lib/penguin/workspace.mli: Database Definition Instance Metric Relational Schema_graph Sql Structural Viewobject Vo_core Vo_query
