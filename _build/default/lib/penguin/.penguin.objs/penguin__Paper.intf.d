lib/penguin/paper.mli:
