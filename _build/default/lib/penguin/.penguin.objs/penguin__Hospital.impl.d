lib/penguin/hospital.ml: Attribute Connection Fmt Generate Instantiate List Metric Predicate Relational Schema Schema_graph Sql Structural Viewobject Vo_core Workspace
