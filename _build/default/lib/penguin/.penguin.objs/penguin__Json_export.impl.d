lib/penguin/json_export.ml: Buffer Char Connection Definition Fmt Instance List Relational Schema_graph String Structural Tuple Value Viewobject
