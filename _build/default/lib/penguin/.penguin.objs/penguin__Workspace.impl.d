lib/penguin/workspace.ml: Database Definition Fmt Generate List Metric Oql Relational Result Schema_graph Sql Structural Transaction Viewobject Vo_core Vo_query
