lib/penguin/upql.ml: Definition Fmt Instance List Oql Predicate Relational Result Sql_lexer Transaction Tuple Value Viewobject Vo_core Vo_query Workspace
