lib/penguin/store.mli: Relational Sexp Structural Value Viewobject Vo_core Workspace
