lib/penguin/store.ml: Attribute Connection Database Definition Fmt Instance Integrity List Relation Relational Result Schema Schema_graph Sexp Structural Tuple Value Viewobject Vo_core Workspace
