lib/penguin/upql.mli: Definition Format Predicate Relational Value Viewobject Vo_core Vo_query Workspace
