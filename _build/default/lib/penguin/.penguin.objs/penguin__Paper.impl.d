lib/penguin/paper.ml: Definition Expansion Fmt Generate Instance List Metric Relational Schema_graph String Structural University Viewobject Vo_core Vo_query
