(* The penguin command-line tool.

     penguin figures [ARTIFACT]     reproduce the paper's figures/dialogs
     penguin show FIXTURE           schema, objects and instances of a fixture
     penguin sql FIXTURE STMT       run a SQL-ish statement against a fixture
     penguin dialog FIXTURE OBJECT  run the translator-choice dialog
     penguin dot FIXTURE            Graphviz rendering of the structural schema

   Fixtures: university | hospital | cad *)

open Cmdliner
open Viewobject

let fixtures =
  [ "university"; "hospital"; "cad" ]

let workspace_of = function
  | "university" -> Penguin.University.workspace ()
  | "hospital" -> Penguin.Hospital.workspace ()
  | "cad" -> Penguin.Cad.workspace ()
  | f -> Fmt.failwith "unknown fixture %s (expected: %s)" f (String.concat ", " fixtures)

let fixture_arg =
  let doc = "Fixture database: university, hospital or cad." in
  Arg.(required & pos 0 (some (enum (List.map (fun f -> f, f) fixtures))) None
       & info [] ~docv:"FIXTURE" ~doc)

(* --- figures --------------------------------------------------------- *)

let figures only =
  let all = Penguin.Paper.all () in
  let selected =
    match only with
    | None -> all
    | Some n ->
        List.filter
          (fun (label, _) ->
            Astring_like.contains ~sub:(String.lowercase_ascii n)
              (String.lowercase_ascii label))
          all
  in
  if selected = [] then (
    Fmt.epr "no artifact matches %a@." Fmt.(option string) only;
    exit 1);
  List.iter
    (fun (label, text) ->
      Fmt.pr "==================== %s ====================@.%s@.@." label text)
    selected

let figures_cmd =
  let only =
    let doc = "Only print artifacts whose label contains $(docv)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ARTIFACT" ~doc)
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's figures and transcripts.")
    Term.(const figures $ only)

(* --- show ------------------------------------------------------------ *)

let show fixture =
  let ws = workspace_of fixture in
  Fmt.pr "structural schema:@.%a@.@." Structural.Schema_graph.pp
    ws.Penguin.Workspace.graph;
  List.iter
    (fun (name, vo) ->
      Fmt.pr "view object %s (complexity %d):@.%s@." name
        (Definition.complexity vo)
        (Definition.to_ascii vo);
      Fmt.pr "  island: %s@." (String.concat ", " (Island.island_labels vo));
      (match Island.peninsula_relations ws.Penguin.Workspace.graph vo with
      | [] -> Fmt.pr "  referencing peninsulas: none@."
      | ps -> Fmt.pr "  referencing peninsulas: %s@." (String.concat ", " ps));
      (match Penguin.Workspace.translator_of ws name with
      | Error _ -> ()
      | Ok spec -> (
          match
            Vo_core.Translator_spec.audit ws.Penguin.Workspace.graph vo spec
          with
          | [] -> ()
          | findings ->
              Fmt.pr "  translator audit:@.";
              List.iter (fun f -> Fmt.pr "    - %s@." f) findings));
      (match Penguin.Workspace.instances ws name with
      | Ok instances ->
          Fmt.pr "  %d instance(s):@." (List.length instances);
          List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) instances
      | Error e -> Fmt.pr "  (instances unavailable: %s)@." e);
      Fmt.pr "@.")
    ws.Penguin.Workspace.objects

let show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a fixture's schema, view objects, islands and instances.")
    Term.(const show $ fixture_arg)

(* --- sql ------------------------------------------------------------- *)

let sql fixture stmt =
  let ws = workspace_of fixture in
  match Penguin.Workspace.run_sql ws stmt with
  | Ok (_, answers) ->
      List.iter (fun a -> Fmt.pr "%a@." Relational.Sql.pp_answer a) answers
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1

let sql_cmd =
  let stmt =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"STATEMENT" ~doc:"SQL-ish statement(s), ';'-separated.")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run SQL-ish statements against a fixture database.")
    Term.(const sql $ fixture_arg $ stmt)

(* --- oql ------------------------------------------------------------- *)

let oql fixture object_name query json sexp =
  let ws = workspace_of fixture in
  match Penguin.Workspace.find_object ws object_name with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok vo -> (
      match Oql.run ws.Penguin.Workspace.db vo query with
      | Error e ->
          Fmt.epr "error: %s@." e;
          exit 1
      | Ok instances ->
          if json then
            Fmt.pr "%s@." (Penguin.Json_export.instances vo instances)
          else if sexp then
            List.iter
              (fun i ->
                Fmt.pr "%s@."
                  (Relational.Sexp.to_string (Penguin.Store.instance_to_sexp i)))
              instances
          else begin
            Fmt.pr "%d instance(s)@." (List.length instances);
            List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) instances
          end)

let oql_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name (see $(b,show)).")
  in
  let query =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"Condition, e.g. \"level = 'grad' and count(STUDENT#2) < 5\".")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit instances as JSON.")
  in
  let sexp =
    Arg.(value & flag
         & info [ "sexp" ]
             ~doc:"Emit instances as S-expressions (the $(b,insert) input \
                   format).")
  in
  Cmd.v
    (Cmd.info "oql" ~doc:"Query a view object with the declarative language.")
    Term.(const oql $ fixture_arg $ object_name $ query $ json $ sexp)

(* --- dialog ---------------------------------------------------------- *)

let dialog fixture object_name assume_yes =
  let ws = workspace_of fixture in
  match Penguin.Workspace.find_object ws object_name with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok vo ->
      let answerer =
        if assume_yes then Vo_core.Dialog.all_yes
        else Vo_core.Dialog.interactive stdin stdout
      in
      let spec, events =
        Vo_core.Dialog.choose ws.Penguin.Workspace.graph vo answerer
      in
      Fmt.pr "@.--- transcript ---@.%s@." (Vo_core.Dialog.transcript events);
      Fmt.pr "@.--- resulting translator ---@.%a@." Vo_core.Translator_spec.pp
        spec;
      match Vo_core.Translator_spec.audit ws.Penguin.Workspace.graph vo spec with
      | [] -> Fmt.pr "@.audit: clean — every allowed update can translate.@."
      | findings ->
          Fmt.pr "@.audit findings:@.";
          List.iter (fun f -> Fmt.pr "  - %s@." f) findings

let dialog_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name (see $(b,show)).")
  in
  let yes =
    Arg.(value & flag
         & info [ "yes"; "y" ] ~doc:"Answer YES to every question (no prompt).")
  in
  Cmd.v
    (Cmd.info "dialog"
       ~doc:"Run the translator-choice dialog for a view object.")
    Term.(const dialog $ fixture_arg $ object_name $ yes)

(* --- insert ------------------------------------------------------------ *)

let insert fixture object_name file =
  let ws = workspace_of fixture in
  let content =
    try
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  in
  let result =
    Result.bind (Relational.Sexp.parse content) Penguin.Store.instance_of_sexp
  in
  match result with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok instance ->
      let _ws, outcome =
        Penguin.Workspace.update ws object_name (Vo_core.Request.insert instance)
      in
      Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome

let insert_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let file =
    Arg.(required & pos 2 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"S-expression instance document (see $(b,oql --sexp)).")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Complete insertion of an instance document through an object.")
    Term.(const insert $ fixture_arg $ object_name $ file)

(* --- schema ------------------------------------------------------------ *)

let schema file pivot dot =
  let content =
    try
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  in
  match Structural.Schema_lang.parse content with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok g ->
      if dot then print_string (Structural.Schema_graph.to_dot g)
      else begin
        Fmt.pr "%a@." Structural.Schema_graph.pp g;
        match pivot with
        | None -> ()
        | Some p ->
            if not (Structural.Schema_graph.mem_relation g p) then begin
              Fmt.epr "error: unknown pivot relation %s@." p;
              exit 1
            end;
            let tree =
              Viewobject.Generate.tree Structural.Metric.default g ~pivot:p
            in
            Fmt.pr "@.expansion tree for pivot %s:@.%s" p
              (Structural.Expansion.to_ascii tree)
      end

let schema_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Schema script (see Schema_lang).")
  in
  let pivot =
    Arg.(value & opt (some string) None
         & info [ "pivot" ] ~docv:"RELATION"
             ~doc:"Also print the expansion tree for this pivot.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Parse and validate a textual structural-schema script.")
    Term.(const schema $ file $ pivot $ dot)

(* --- update ----------------------------------------------------------- *)

let update fixture object_name stmt =
  let ws = workspace_of fixture in
  match Penguin.Upql.apply ws ~object_name stmt with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok (_ws, outcomes) ->
      List.iter (fun o -> Fmt.pr "%a@." Vo_core.Engine.pp_outcome o) outcomes;
      Fmt.pr "%d instance(s) affected@."
        (List.length
           (List.filter
              (fun (o : Vo_core.Engine.outcome) ->
                Option.is_some (Vo_core.Engine.committed o))
              outcomes))

let update_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name (see $(b,show)).")
  in
  let stmt =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"STATEMENT"
             ~doc:"e.g. \"set units = 4 where course_id = 'CS345'\" or \
                   \"delete where level = 'undergrad'\".")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Update through a view object with the textual update language.")
    Term.(const update $ fixture_arg $ object_name $ stmt)

(* --- export / import -------------------------------------------------- *)

let export fixture path no_data =
  let ws = workspace_of fixture in
  match Penguin.Store.save_file ~include_data:(not no_data) ws path with
  | Ok () -> Fmt.pr "saved %s workspace to %s@." fixture path
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1

let export_cmd =
  let path =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FILE" ~doc:"Destination file.")
  in
  let no_data =
    Arg.(value & flag
         & info [ "no-data" ]
             ~doc:"Save only the definitions (schemas, connections, objects, \
                   translators).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Save a fixture workspace to a file.")
    Term.(const export $ fixture_arg $ path $ no_data)

let import path =
  match Penguin.Store.load_file path with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok ws ->
      Fmt.pr "loaded workspace: %d relation(s), %d tuple(s), %d object(s)@."
        (List.length (Structural.Schema_graph.relations ws.Penguin.Workspace.graph))
        (Relational.Database.total_tuples ws.Penguin.Workspace.db)
        (List.length ws.Penguin.Workspace.objects);
      List.iter
        (fun (name, vo) ->
          Fmt.pr "@.view object %s:@.%s" name (Definition.to_ascii vo))
        ws.Penguin.Workspace.objects;
      (match Penguin.Workspace.check_consistency ws with
      | Ok () -> Fmt.pr "@.database is consistent.@."
      | Error e -> Fmt.pr "@.WARNING: %s@." e)

let import_cmd =
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Workspace file to load.")
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Load and describe a saved workspace.")
    Term.(const import $ path)

(* --- dot ------------------------------------------------------------- *)

let dot fixture =
  let ws = workspace_of fixture in
  print_string (Structural.Schema_graph.to_dot ws.Penguin.Workspace.graph)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the structural schema in Graphviz format.")
    Term.(const dot $ fixture_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "penguin" ~version:"1.0.0"
       ~doc:
         "Object-based views over relational databases, with update \
          translation (Barsalou, Keller, Siambela & Wiederhold, SIGMOD '91).")
    [ figures_cmd; show_cmd; sql_cmd; oql_cmd; update_cmd; insert_cmd;
      dialog_cmd; dot_cmd; export_cmd; import_cmd; schema_cmd ]

let setup_logging () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "PENGUIN_LOG") with
  | None | Some "" -> ()
  | Some level ->
      let level =
        match level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | "warning" | "warn" -> Some Logs.Warning
        | "error" -> Some Logs.Error
        | _ -> Some Logs.Info
      in
      Logs.set_level level;
      let report src lvl ~over k msgf =
        let k _ = over (); k () in
        msgf @@ fun ?header:_ ?tags:_ fmt ->
        Format.kfprintf k Format.err_formatter
          ("[%s:%s] @[" ^^ fmt ^^ "@]@.")
          (Logs.Src.name src)
          (Logs.level_to_string (Some lvl))
      in
      Logs.set_reporter { Logs.report }

let () =
  setup_logging ();
  exit (Cmd.eval main_cmd)
