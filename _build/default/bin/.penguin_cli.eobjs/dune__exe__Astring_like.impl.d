bin/astring_like.ml: String
