bin/penguin_cli.mli:
