bin/penguin_cli.ml: Arg Astring_like Cmd Cmdliner Definition Fmt Format Instance Island List Logs Option Oql Penguin Relational Result String Structural Sys Term Viewobject Vo_core
