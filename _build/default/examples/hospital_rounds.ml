(* Clinical records through a patient-record view object (the domain that
   motivated PENGUIN). Demonstrates:

   - a deep dependency island (PATIENT --* VISIT --* ORDERS --* RESULT),
   - reference data locked by the translator (PHYSICIAN, WARD),
   - a nullable referencing relation outside the object (APPOINTMENT),
     fixed up with the Nullify action on patient discharge,
   - partial updates that add a visit with orders in one request.

   Run with: dune exec examples/hospital_rounds.exe *)

open Relational
open Viewobject
open Penguin

let section title = Fmt.pr "@.=== %s ===@." title

let or_die = function
  | Ok v -> v
  | Error e -> Fmt.failwith "hospital_rounds: %s" e

let () =
  section "Patient-record view object";
  Fmt.pr "%s@." (Definition.to_ascii Hospital.patient_record);
  Fmt.pr "island: %s@."
    (String.concat ", " (Island.island_labels Hospital.patient_record));

  let ws = Hospital.workspace () in

  section "Morning rounds: John Poe's record";
  let record = Hospital.patient_instance ws.Workspace.db 7001 in
  Fmt.pr "%s@." (Instance.to_ascii record);

  section "New visit with an order (single partial update)";
  let new_visit =
    Instance.make ~label:Hospital.visit_label ~relation:"VISIT"
      ~tuple:
        (Tuple.make
           [ "visit_no", Value.Int 3; "vdate", Value.Str "1991-05-05";
             "reason", Value.Str "dizziness" ])
      ~children:
        [
          Hospital.orders_label,
          [ Instance.make ~label:Hospital.orders_label ~relation:"ORDERS"
              ~tuple:
                (Tuple.make
                   [ "order_no", Value.Int 1; "drug", Value.Str "holter monitor";
                     "dose", Value.Int 1; "prescriber", Value.Int 101 ])
              ~children:
                [ Hospital.prescriber_label,
                  [ Instance.leaf ~label:Hospital.prescriber_label
                      ~relation:"PHYSICIAN"
                      (Tuple.make [ "phys_id", Value.Int 101 ]) ] ] ];
        ]
  in
  let request =
    or_die
      (Vo_core.Request.partial_attach record ~parent_label:"PATIENT"
         ~at:(Tuple.make [ "mrn", Value.Int 7001 ])
         ~child:new_visit)
  in
  let ws, outcome = Workspace.update ws "patient_record" request in
  Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome;

  section "Query: patients with more than one visit";
  let busy =
    or_die
      (Workspace.query ws "patient_record"
         (Vo_query.C_count (Hospital.visit_label, Predicate.Gt, 1)))
  in
  List.iter
    (fun (i : Instance.t) ->
      Fmt.pr "- %a (%d visits)@." Value.pp_plain
        (Tuple.get i.Instance.tuple "name")
        (List.length (Instance.children_of i Hospital.visit_label)))
    busy;

  section "Attempting to create a physician through the record (denied)";
  let record = Hospital.patient_instance ws.Workspace.db 7003 in
  let bad =
    or_die
      (Vo_core.Request.modify_component record ~label:"PHYSICIAN"
         ~at:(Tuple.make [ "phys_id", Value.Int 100 ])
         ~f:(fun _ ->
           Tuple.make
             [ "phys_id", Value.Int 999; "name", Value.Str "Dr. Who";
               "specialty", Value.Str "Time" ]))
  in
  let ws, outcome =
    Workspace.update ws "patient_record"
      (Vo_core.Request.replace ~old_instance:record ~new_instance:bad)
  in
  Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome;

  section "Discharge: delete the whole record, appointments nullified";
  let record = Hospital.patient_instance ws.Workspace.db 7001 in
  let ws, outcome =
    Workspace.update ws "patient_record" (Vo_core.Request.delete record)
  in
  Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome;
  let _, answer =
    or_die (Sql.run ws.Workspace.db "SELECT appt_id, mrn, adate FROM APPOINTMENT")
  in
  Fmt.pr "appointments after discharge (references nullified):@.%a@."
    Sql.pp_answer answer;
  or_die (Workspace.check_consistency ws);
  Fmt.pr "@.rounds complete; database consistent.@."
