(* Quickstart: the whole view-object lifecycle on a tiny library database.

   1. declare relation schemas and structural connections,
   2. load data through the SQL-ish DML,
   3. generate a view object by pruning the expansion tree,
   4. choose a translator (scripted dialog),
   5. query the object,
   6. update through the object and watch the relational translation.

   Run with: dune exec examples/quickstart.exe *)

open Relational
open Structural
open Viewobject

let section title = Fmt.pr "@.=== %s ===@." title

let or_die = function
  | Ok v -> v
  | Error e -> Fmt.failwith "quickstart: %s" e

let () =
  section "1. Structural schema (relations + typed connections)";
  let author =
    Schema.make_exn ~name:"AUTHOR"
      ~attributes:[ Attribute.str "author_id"; Attribute.str "name" ]
      ~key:[ "author_id" ]
  in
  let book =
    Schema.make_exn ~name:"BOOK"
      ~attributes:
        [ Attribute.str "isbn"; Attribute.str "title"; Attribute.str "author_id";
          Attribute.int "year" ]
      ~key:[ "isbn" ]
  in
  let copy =
    Schema.make_exn ~name:"COPY"
      ~attributes:[ Attribute.str "isbn"; Attribute.int "copy_no"; Attribute.str "shelf" ]
      ~key:[ "isbn"; "copy_no" ]
  in
  let loan =
    Schema.make_exn ~name:"LOAN"
      ~attributes:
        [ Attribute.int "loan_id"; Attribute.str "isbn"; Attribute.str "member" ]
      ~key:[ "loan_id" ]
  in
  let graph =
    Schema_graph.make_exn
      [ author; book; copy; loan ]
      [
        (* a book references its author (n:1) *)
        Connection.reference "BOOK" "AUTHOR" ~on:([ "author_id" ], [ "author_id" ]);
        (* a book owns its physical copies (1:n) *)
        Connection.ownership "BOOK" "COPY" ~on:([ "isbn" ], [ "isbn" ]);
        (* a loan references a book *)
        Connection.reference "LOAN" "BOOK" ~on:([ "isbn" ], [ "isbn" ]);
      ]
  in
  Fmt.pr "%a@." Schema_graph.pp graph;

  section "2. Data (SQL-ish DML)";
  let ws = Penguin.Workspace.create graph in
  let ws, _ =
    or_die
      (Penguin.Workspace.run_sql ws
         {|
         INSERT INTO AUTHOR VALUES ('A1', 'Ursula K. Le Guin');
         INSERT INTO AUTHOR VALUES ('A2', 'Stanislaw Lem');
         INSERT INTO BOOK VALUES ('0-06-093', 'The Dispossessed', 'A1', 1974);
         INSERT INTO BOOK VALUES ('0-15-602', 'Solaris', 'A2', 1961);
         INSERT INTO COPY VALUES ('0-06-093', 1, 'SF-1');
         INSERT INTO COPY VALUES ('0-06-093', 2, 'SF-2');
         INSERT INTO COPY VALUES ('0-15-602', 1, 'SF-9');
         INSERT INTO LOAN VALUES (501, '0-06-093', 'alice');
         |})
  in
  let _, answer = or_die (Sql.run ws.Penguin.Workspace.db "SELECT title, name FROM BOOK, AUTHOR WHERE BOOK.author_id = AUTHOR.author_id") in
  Fmt.pr "%a@." Sql.pp_answer answer;

  section "3. View-object generation (expansion tree, then pruning)";
  let tree = Generate.tree Metric.default graph ~pivot:"BOOK" in
  Fmt.pr "expansion tree for pivot BOOK:@.%s" (Expansion.to_ascii tree);
  let ws =
    or_die
      (Penguin.Workspace.define_object ws ~name:"book_object" ~pivot:"BOOK"
         ~keep:
           [
             "BOOK", [ "isbn"; "title"; "year" ];
             "AUTHOR", [ "author_id"; "name" ];
             "COPY", [ "copy_no"; "shelf" ];
           ])
  in
  let vo = or_die (Penguin.Workspace.find_object ws "book_object") in
  Fmt.pr "pruned definition:@.%s" (Definition.to_ascii vo);
  Fmt.pr "dependency island: %s@."
    (String.concat ", " (Island.island_labels vo));
  Fmt.pr "referencing peninsulas: %s@."
    (String.concat ", " (Island.peninsula_relations graph vo));

  section "4. Translator choice (definition-time dialog)";
  let ws, events =
    or_die
      (Penguin.Workspace.choose_translator ws "book_object" Vo_core.Dialog.all_yes)
  in
  Fmt.pr "%s@." (Vo_core.Dialog.transcript events);

  section "5. Queries on the object";
  let instances =
    or_die
      (Penguin.Workspace.query ws "book_object"
         (Vo_query.C_count ("COPY", Predicate.Geq, 2)))
  in
  Fmt.pr "books with at least two copies:@.";
  List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) instances;

  section "6. Updates through the object";
  let solaris =
    List.hd
      (or_die
         (Penguin.Workspace.query ws "book_object"
            (Vo_query.C_node ("BOOK", Predicate.eq_str "isbn" "0-15-602"))))
  in
  (* 6a. attach a new copy (partial update -> minimal translation) *)
  let new_copy =
    Instance.leaf ~label:"COPY" ~relation:"COPY"
      (Tuple.make [ "copy_no", Value.Int 2; "shelf", Value.Str "SF-9" ])
  in
  let request =
    or_die
      (Vo_core.Request.partial_attach solaris ~parent_label:"BOOK"
         ~at:(Tuple.make [ "isbn", Value.Str "0-15-602" ])
         ~child:new_copy)
  in
  let ws, outcome = Penguin.Workspace.update ws "book_object" request in
  Fmt.pr "attach a copy of Solaris:@.%a@." Vo_core.Engine.pp_outcome outcome;
  (* 6b. delete The Dispossessed: the island cascades to its copies, and
     the referencing LOAN is handled per the translator *)
  let dispossessed =
    List.hd
      (or_die
         (Penguin.Workspace.query ws "book_object"
            (Vo_query.C_node ("BOOK", Predicate.eq_str "isbn" "0-06-093"))))
  in
  let ws, outcome =
    Penguin.Workspace.update ws "book_object" (Vo_core.Request.delete dispossessed)
  in
  Fmt.pr "delete The Dispossessed:@.%a@." Vo_core.Engine.pp_outcome outcome;
  let _, answer = or_die (Sql.run ws.Penguin.Workspace.db "SELECT * FROM COPY") in
  Fmt.pr "remaining copies:@.%a@." Sql.pp_answer answer;
  or_die (Penguin.Workspace.check_consistency ws);
  Fmt.pr "@.database is globally consistent. done.@."
