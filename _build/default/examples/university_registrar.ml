(* The paper's running example, end to end: the university database of
   Figure 1, the view object omega of Figure 2(c), the Figure 4 query,
   the Section 6 translator dialog, and the EES345 replacement under both
   translators — followed by a complete registrar workflow (new course,
   grade changes, course deletion).

   Run with: dune exec examples/university_registrar.exe *)

open Relational
open Viewobject
open Penguin

let section title = Fmt.pr "@.=== %s ===@." title

let or_die = function
  | Ok v -> v
  | Error e -> Fmt.failwith "university_registrar: %s" e

let () =
  section "Figure 1: structural schema";
  Fmt.pr "%s@." (Paper.figure1 ());

  section "Figure 2: view-object generation";
  Fmt.pr "%s@." (Paper.figure2b ());
  Fmt.pr "%s@." (Paper.figure2c ());

  section "Figure 3: a different view of the database";
  Fmt.pr "%s@." (Paper.figure3 ());

  section "Figure 4: instantiation";
  Fmt.pr "%s@." (Paper.figure4 ());

  section "Section 6: choosing a translator by dialog";
  Fmt.pr "%s@." (Paper.section6_dialog ());

  section "Section 6: the EES345 replacement, both translators";
  Fmt.pr "%s@." (Paper.ees345_example ());

  section "Registrar workflow";
  let ws = University.workspace () in

  (* a) new course with enrollment, through the object *)
  let new_course =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (Tuple.make
           [ "course_id", Value.Str "CS446"; "title", Value.Str "Data Visualization";
             "units", Value.Int 3; "level", Value.Str "grad" ])
      ~children:
        [
          "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (Tuple.make [ "dept_name", Value.Str "Computer Science";
                            "building", Value.Str "Gates" ]) ];
          "GRADES",
          [ Instance.make ~label:"GRADES" ~relation:"GRADES"
              ~tuple:(Tuple.make [ "pid", Value.Int 5; "grade", Value.Str "A" ])
              ~children:
                [ "STUDENT#2",
                  [ Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
                      (Tuple.make [ "pid", Value.Int 5 ]) ] ] ];
          "CURRICULUM",
          [ Instance.leaf ~label:"CURRICULUM" ~relation:"CURRICULUM"
              (Tuple.make [ "degree", Value.Str "MS CS"; "requirement", Value.Str "elective" ]) ];
        ]
  in
  let ws, outcome = Workspace.update ws "omega" (Vo_core.Request.insert new_course) in
  Fmt.pr "insert CS446:@.%a@." Vo_core.Engine.pp_outcome outcome;

  (* b) grade change via a partial update *)
  let cs446 =
    List.hd
      (or_die
         (Workspace.query ws "omega"
            (Vo_query.C_node ("COURSES", Predicate.eq_str "course_id" "CS446"))))
  in
  let request =
    or_die
      (Vo_core.Request.partial_modify cs446 ~label:"GRADES"
         ~at:(Tuple.make [ "pid", Value.Int 5 ])
         ~f:(fun t -> Tuple.set t "grade" (Value.Str "A+")))
  in
  let ws, outcome = Workspace.update ws "omega" request in
  Fmt.pr "grade change:@.%a@." Vo_core.Engine.pp_outcome outcome;

  (* c) the Figure 4 query again over the updated database *)
  let grads =
    or_die
      (Workspace.query ws "omega"
         (Vo_query.C_and
            ( Vo_query.C_node ("COURSES", Predicate.eq_str "level" "grad"),
              Vo_query.C_count (University.student_label, Predicate.Lt, 5) )))
  in
  Fmt.pr "graduate courses with <5 students now:@.";
  List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) grads;

  (* d) retire the course: complete deletion cascades through the island
     and fixes the curriculum peninsula *)
  let cs446 =
    List.hd
      (or_die
         (Workspace.query ws "omega"
            (Vo_query.C_node ("COURSES", Predicate.eq_str "course_id" "CS446"))))
  in
  let ws, outcome = Workspace.update ws "omega" (Vo_core.Request.delete cs446) in
  Fmt.pr "retire CS446:@.%a@." Vo_core.Engine.pp_outcome outcome;
  or_die (Workspace.check_consistency ws);

  section "The same workflow in the textual languages";
  (* the Figure-4 query in OQL *)
  let grads =
    or_die (Workspace.oql ws "omega" "level = 'grad' and count(STUDENT#2) < 5")
  in
  Fmt.pr "oql> level = 'grad' and count(STUDENT#2) < 5@.";
  List.iter
    (fun (i : Instance.t) ->
      Fmt.pr "  -> %a@." Relational.Value.pp_plain
        (Relational.Tuple.get i.Instance.tuple "course_id"))
    grads;
  (* and the EES345 replacement as a single update statement *)
  let stmt =
    "set course_id = 'EES345', DEPARTMENT.dept_name = 'Engineering Economic \
     Systems', DEPARTMENT.building = null where course_id = 'CS345'"
  in
  Fmt.pr "@.upql> %s@." stmt;
  let ws, outcomes = or_die (Upql.apply ws ~object_name:"omega" stmt) in
  List.iter (fun o -> Fmt.pr "%a@." Vo_core.Engine.pp_outcome o) outcomes;
  or_die (Workspace.check_consistency ws);
  Fmt.pr "@.registrar workflow complete; database consistent.@."
