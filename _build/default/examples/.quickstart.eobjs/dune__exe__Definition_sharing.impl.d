examples/definition_sharing.ml: Csv Database Filename Fmt Instance List Penguin Relation Relational Store String Sys University Upql Viewobject Vo_core Workspace
