examples/cad_release.mli:
