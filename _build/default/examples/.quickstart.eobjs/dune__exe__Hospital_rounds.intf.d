examples/hospital_rounds.mli:
