examples/definition_sharing.mli:
