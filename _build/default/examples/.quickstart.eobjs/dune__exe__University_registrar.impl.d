examples/university_registrar.ml: Fmt Instance List Paper Penguin Predicate Relational Tuple University Upql Value Viewobject Vo_core Vo_query Workspace
