examples/university_registrar.mli:
