examples/hospital_rounds.ml: Definition Fmt Hospital Instance Island List Penguin Predicate Relational Sql String Tuple Value Viewobject Vo_core Vo_query Workspace
