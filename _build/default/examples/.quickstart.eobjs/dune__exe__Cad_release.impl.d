examples/cad_release.ml: Cad Definition Fmt Instance List Penguin Predicate Relational Sql Tuple Value Viewobject Vo_core Vo_query Workspace
