examples/quickstart.mli:
