(* Engineering-design data through an assembly view object (cf. the CAD
   special issue the view-object prototype first appeared in). Shows:

   - an island with two ownership branches (COMPONENT, DRAWING),
   - catalog relations (PART, SUPPLIER) that may be corrected but not
     created through the object,
   - an island key replacement (assembly re-identification) cascading to
     all owned tuples,
   - a bill-of-materials query mixing node predicates and counts.

   Run with: dune exec examples/cad_release.exe *)

open Relational
open Viewobject
open Penguin

let section title = Fmt.pr "@.=== %s ===@." title

let or_die = function
  | Ok v -> v
  | Error e -> Fmt.failwith "cad_release: %s" e

let () =
  section "Assembly view object";
  Fmt.pr "%s@." (Definition.to_ascii Cad.assembly_object);

  let ws = Cad.workspace () in

  section "Bill of materials for the chassis";
  let a1 = Cad.assembly_instance ws.Workspace.db "A1" in
  Fmt.pr "%s@." (Instance.to_ascii a1);

  section "Add a component using a catalog part";
  let new_component =
    Instance.make ~label:"COMPONENT" ~relation:"COMPONENT"
      ~tuple:
        (Tuple.make
           [ "comp_no", Value.Int 4; "part_no", Value.Str "PN-200";
             "qty", Value.Int 16 ])
      ~children:
        [ "PART",
          [ Instance.leaf ~label:"PART" ~relation:"PART"
              (Tuple.make [ "part_no", Value.Str "PN-200" ]) ] ]
  in
  let request =
    or_die
      (Vo_core.Request.partial_attach a1 ~parent_label:"ASSEMBLY"
         ~at:(Tuple.make [ "asm_id", Value.Str "A1" ])
         ~child:new_component)
  in
  let ws, outcome = Workspace.update ws "assembly" request in
  Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome;

  section "Add a component with an unknown part (denied: catalog locked)";
  let a1 = Cad.assembly_instance ws.Workspace.db "A1" in
  let rogue =
    Instance.make ~label:"COMPONENT" ~relation:"COMPONENT"
      ~tuple:
        (Tuple.make
           [ "comp_no", Value.Int 5; "part_no", Value.Str "PN-999";
             "qty", Value.Int 1 ])
      ~children:
        [ "PART",
          [ Instance.leaf ~label:"PART" ~relation:"PART"
              (Tuple.make [ "part_no", Value.Str "PN-999";
                            "descr", Value.Str "mystery bracket" ]) ] ]
  in
  let request =
    or_die
      (Vo_core.Request.partial_attach a1 ~parent_label:"ASSEMBLY"
         ~at:(Tuple.make [ "asm_id", Value.Str "A1" ])
         ~child:rogue)
  in
  let ws, outcome = Workspace.update ws "assembly" request in
  Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome;

  section "Release: re-identify the assembly (island key replacement)";
  let a1 = Cad.assembly_instance ws.Workspace.db "A1" in
  let released =
    Instance.with_tuple a1
      (Tuple.set a1.Instance.tuple "asm_id" (Value.Str "A1-REL1"))
  in
  let ws, outcome =
    Workspace.update ws "assembly"
      (Vo_core.Request.replace ~old_instance:a1 ~new_instance:released)
  in
  Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome;
  let _, answer =
    or_die (Sql.run ws.Workspace.db "SELECT asm_id, comp_no, part_no FROM COMPONENT")
  in
  Fmt.pr "components after release:@.%a@." Sql.pp_answer answer;

  section "Query: assemblies using more than two distinct parts";
  let heavy =
    or_die
      (Workspace.query ws "assembly" (Vo_query.C_count ("PART", Predicate.Gt, 2)))
  in
  List.iter
    (fun (i : Instance.t) ->
      Fmt.pr "- %a@." Value.pp_plain (Tuple.get i.Instance.tuple "name"))
    heavy;
  or_die (Workspace.check_consistency ws);
  Fmt.pr "@.release complete; database consistent.@."
