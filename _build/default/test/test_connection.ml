open Relational
open Structural
open Test_util

let owner =
  Schema.make_exn ~name:"OWNER"
    ~attributes:[ Attribute.int "oid"; Attribute.str "nm" ]
    ~key:[ "oid" ]

let owned =
  Schema.make_exn ~name:"OWNED"
    ~attributes:[ Attribute.int "oid"; Attribute.int "seq"; Attribute.str "x" ]
    ~key:[ "oid"; "seq" ]

let refd =
  Schema.make_exn ~name:"REFD"
    ~attributes:[ Attribute.int "rid"; Attribute.str "y" ]
    ~key:[ "rid" ]

(* Single-attribute key, for the proper-subset test. *)
let owned_flat =
  Schema.make_exn ~name:"OWNED_FLAT"
    ~attributes:[ Attribute.int "oid"; Attribute.str "x" ]
    ~key:[ "oid" ]

(* Source with an int key attribute and an int nonkey attribute, and a
   target with a composite int key — for the straddling-X1 test. *)
let src =
  Schema.make_exn ~name:"SRC"
    ~attributes:[ Attribute.int "k1"; Attribute.int "n1"; Attribute.str "n2" ]
    ~key:[ "k1" ]

let tgt2 =
  Schema.make_exn ~name:"TGT2"
    ~attributes:[ Attribute.int "t1"; Attribute.int "t2" ]
    ~key:[ "t1"; "t2" ]

let schema_of name =
  List.find_opt
    (fun s -> s.Schema.name = name)
    [ owner; owned; refd; owned_flat; src; tgt2 ]

let validate c = Connection.validate ~schema_of c

let test_ownership_ok () =
  check_ok
    (validate (Connection.ownership "OWNER" "OWNED" ~on:([ "oid" ], [ "oid" ])))

let test_ownership_x1_must_be_key () =
  check_err_contains ~sub:"X1 must equal K"
    (validate (Connection.ownership "OWNER" "OWNED" ~on:([ "nm" ], [ "x" ])))

let test_ownership_x2_proper_subset () =
  (* X2 equal to the whole key of the owned relation is not a proper
     subset: such a connection is a subset connection, not ownership. *)
  check_err_contains ~sub:"proper subset"
    (validate (Connection.ownership "OWNER" "OWNED_FLAT" ~on:([ "oid" ], [ "oid" ])));
  (* ... and arity must match anyway *)
  check_err_contains ~sub:"arities"
    (validate (Connection.ownership "OWNER" "OWNED" ~on:([ "oid" ], [ "oid"; "seq" ])))

let test_reference_ok_nk () =
  (* X1 within NK(OWNED) referencing REFD's key: need an int NK attr. *)
  check_ok
    (validate
       (Connection.reference "OWNER" "REFD" ~on:([ "oid" ], [ "rid" ])))
  (* oid is the key of OWNER: X1 within K(R1) is allowed too *)

let test_reference_x1_mixed_rejected () =
  (* X1 straddling key and nonkey of SRC is rejected. *)
  check_err_contains ~sub:"X1 must lie within"
    (validate
       (Connection.reference "SRC" "TGT2" ~on:([ "k1"; "n1" ], [ "t1"; "t2" ])))

let test_reference_x2_must_be_key () =
  check_err_contains ~sub:"X2 must equal K"
    (validate (Connection.reference "OWNER" "REFD" ~on:([ "nm" ], [ "y" ])))

let test_subset_ok () =
  check_ok
    (validate (Connection.subset "OWNER" "REFD" ~on:([ "oid" ], [ "rid" ])))

let test_subset_keys () =
  (* n1 is an int nonkey attribute: domains agree, but X1 <> K(SRC). *)
  check_err_contains ~sub:"X1 must equal K"
    (validate (Connection.subset "SRC" "REFD" ~on:([ "n1" ], [ "rid" ])))

let test_unknown_endpoints () =
  check_err_contains ~sub:"unknown source"
    (validate (Connection.ownership "GHOST" "OWNED" ~on:([ "a" ], [ "b" ])));
  check_err_contains ~sub:"unknown target"
    (validate (Connection.ownership "OWNER" "GHOST" ~on:([ "oid" ], [ "b" ])))

let test_unknown_attrs_and_domains () =
  check_err_contains ~sub:"has no attribute"
    (validate (Connection.ownership "OWNER" "OWNED" ~on:([ "zz" ], [ "oid" ])));
  check_err_contains ~sub:"domain mismatch"
    (validate (Connection.reference "OWNER" "REFD" ~on:([ "nm" ], [ "rid" ])))

let test_empty_attrs () =
  check_err_contains ~sub:"empty attribute"
    (validate (Connection.ownership "OWNER" "OWNED" ~on:([], [])))

let test_connected () =
  let c = Connection.ownership "OWNER" "OWNED" ~on:([ "oid" ], [ "oid" ]) in
  Alcotest.(check bool) "connected" true
    (Connection.connected c (tuple [ "oid", vi 1 ]) (tuple [ "oid", vi 1; "seq", vi 2 ]));
  Alcotest.(check bool) "not connected" false
    (Connection.connected c (tuple [ "oid", vi 1 ]) (tuple [ "oid", vi 2 ]))

let test_meta () =
  Alcotest.(check string) "cardinality own" "1:n" (Connection.cardinality Connection.Ownership);
  Alcotest.(check string) "cardinality ref" "n:1" (Connection.cardinality Connection.Reference);
  Alcotest.(check string) "cardinality sub" "1:[0,1]" (Connection.cardinality Connection.Subset);
  Alcotest.(check string) "symbol" "--*" (Connection.symbol Connection.Ownership);
  let c = Connection.subset "OWNER" "REFD" ~on:([ "oid" ], [ "rid" ]) in
  Alcotest.(check bool) "id stable" true (Connection.equal c c)

let suite =
  [
    Alcotest.test_case "ownership ok" `Quick test_ownership_ok;
    Alcotest.test_case "ownership X1=K" `Quick test_ownership_x1_must_be_key;
    Alcotest.test_case "ownership X2 proper subset" `Quick test_ownership_x2_proper_subset;
    Alcotest.test_case "reference ok" `Quick test_reference_ok_nk;
    Alcotest.test_case "reference X1 within K or NK" `Quick test_reference_x1_mixed_rejected;
    Alcotest.test_case "reference X2=K" `Quick test_reference_x2_must_be_key;
    Alcotest.test_case "subset ok" `Quick test_subset_ok;
    Alcotest.test_case "subset keys" `Quick test_subset_keys;
    Alcotest.test_case "unknown endpoints" `Quick test_unknown_endpoints;
    Alcotest.test_case "unknown attrs/domains" `Quick test_unknown_attrs_and_domains;
    Alcotest.test_case "empty attrs" `Quick test_empty_attrs;
    Alcotest.test_case "tuple connection" `Quick test_connected;
    Alcotest.test_case "metadata" `Quick test_meta;
  ]
