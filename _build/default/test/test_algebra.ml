open Relational
open Test_util

let db =
  let s_r =
    Schema.make_exn ~name:"R"
      ~attributes:[ Attribute.int "id"; Attribute.str "v"; Attribute.int "w" ]
      ~key:[ "id" ]
  in
  let s_s =
    Schema.make_exn ~name:"S"
      ~attributes:[ Attribute.int "sid"; Attribute.int "rid"; Attribute.str "tag" ]
      ~key:[ "sid" ]
  in
  let s_t =
    Schema.make_exn ~name:"T"
      ~attributes:[ Attribute.int "id"; Attribute.str "v"; Attribute.int "w" ]
      ~key:[ "id" ]
  in
  let db = Database.empty in
  let db = Database.create_relation_exn db s_r in
  let db = Database.create_relation_exn db s_s in
  let db = Database.create_relation_exn db s_t in
  let ins db rel l = check_ok (Result.map_error Database.error_to_string (Database.insert db rel (tuple l))) in
  let db = ins db "R" [ "id", vi 1; "v", vs "a"; "w", vi 10 ] in
  let db = ins db "R" [ "id", vi 2; "v", vs "b"; "w", vi 20 ] in
  let db = ins db "R" [ "id", vi 3; "v", vs "a"; "w", vi 30 ] in
  let db = ins db "S" [ "sid", vi 1; "rid", vi 1; "tag", vs "x" ] in
  let db = ins db "S" [ "sid", vi 2; "rid", vi 1; "tag", vs "y" ] in
  let db = ins db "S" [ "sid", vi 3; "rid", vi 3; "tag", vs "z" ] in
  let db = ins db "T" [ "id", vi 3; "v", vs "a"; "w", vi 30 ] in
  let db = ins db "T" [ "id", vi 4; "v", vs "d"; "w", vi 40 ] in
  db

let eval e = check_ok (Algebra.eval db e)

let test_base () =
  let rs = eval (Algebra.Base "R") in
  Alcotest.(check int) "rows" 3 (Algebra.cardinality rs);
  Alcotest.(check (list string)) "attrs" [ "id"; "v"; "w" ] rs.Algebra.attrs;
  ignore (check_err (Algebra.eval db (Algebra.Base "NOPE")))

let test_select () =
  let rs = eval (Algebra.select (Predicate.eq_str "v" "a") (Algebra.Base "R")) in
  Alcotest.(check int) "two a's" 2 (Algebra.cardinality rs);
  check_err_contains ~sub:"unknown attribute"
    (Algebra.eval db (Algebra.select (Predicate.eq_int "zz" 0) (Algebra.Base "R")))

let test_project () =
  let rs = eval (Algebra.project [ "v" ] (Algebra.Base "R")) in
  Alcotest.(check int) "dedup" 2 (Algebra.cardinality rs);
  Alcotest.(check (list string)) "attrs" [ "v" ] rs.Algebra.attrs;
  check_err_contains ~sub:"unknown attribute"
    (Algebra.eval db (Algebra.project [ "zz" ] (Algebra.Base "R")))

let test_rename_qualify () =
  let rs = eval (Algebra.Rename ([ "id", "rid2" ], Algebra.Base "R")) in
  Alcotest.(check (list string)) "renamed" [ "rid2"; "v"; "w" ] rs.Algebra.attrs;
  let q = eval (Algebra.qualify "r" (Algebra.Base "R")) in
  Alcotest.(check (list string)) "qualified" [ "r.id"; "r.v"; "r.w" ]
    q.Algebra.attrs

let test_product_collision () =
  check_err_contains ~sub:"collision"
    (Algebra.eval db (Algebra.Product (Algebra.Base "R", Algebra.Base "T")));
  let ok =
    eval
      (Algebra.Product
         (Algebra.qualify "r" (Algebra.Base "R"), Algebra.qualify "t" (Algebra.Base "T")))
  in
  Alcotest.(check int) "3x2" 6 (Algebra.cardinality ok)

let test_join () =
  let rs =
    eval
      (Algebra.join [ "r.id", "s.rid" ]
         (Algebra.qualify "r" (Algebra.Base "R"))
         (Algebra.qualify "s" (Algebra.Base "S")))
  in
  Alcotest.(check int) "joined" 3 (Algebra.cardinality rs)

let test_natural_join () =
  let rs = eval (Algebra.Natural_join (Algebra.Base "R", Algebra.Base "T")) in
  Alcotest.(check int) "one shared row" 1 (Algebra.cardinality rs);
  Alcotest.(check (list string)) "attrs merged" [ "id"; "v"; "w" ]
    rs.Algebra.attrs

let test_union_diff_intersect () =
  let u = eval (Algebra.Union (Algebra.Base "R", Algebra.Base "T")) in
  Alcotest.(check int) "union" 4 (Algebra.cardinality u);
  let d = eval (Algebra.Diff (Algebra.Base "R", Algebra.Base "T")) in
  Alcotest.(check int) "diff" 2 (Algebra.cardinality d);
  let i = eval (Algebra.Intersect (Algebra.Base "R", Algebra.Base "T")) in
  Alcotest.(check int) "intersect" 1 (Algebra.cardinality i);
  check_err_contains ~sub:"differ"
    (Algebra.eval db (Algebra.Union (Algebra.Base "R", Algebra.Base "S")))

let test_attributes_of () =
  Alcotest.(check (list string)) "attrs of join expr"
    [ "id"; "v"; "w"; "sid"; "rid"; "tag" ]
    (check_ok
       (Algebra.attributes_of db
          (Algebra.Join ([ "id", "rid" ], Algebra.Base "R", Algebra.Base "S"))))

let test_select_idempotent () =
  let p = Predicate.eq_str "v" "a" in
  let once = eval (Algebra.select p (Algebra.Base "R")) in
  let twice = eval (Algebra.select p (Algebra.select p (Algebra.Base "R"))) in
  Alcotest.(check int) "same cardinality" (Algebra.cardinality once)
    (Algebra.cardinality twice)

let test_group_basic () =
  let rs =
    eval
      (Algebra.Group
         ( [ "v" ],
           [ Algebra.count_all "n"; Algebra.agg Algebra.Sum "w" ~output:"total" ],
           Algebra.Base "R" ))
  in
  Alcotest.(check (list string)) "attrs" [ "v"; "n"; "total" ] rs.Algebra.attrs;
  Alcotest.(check int) "two groups" 2 (Algebra.cardinality rs);
  let row_a =
    List.find (fun t -> Tuple.get t "v" = vs "a") rs.Algebra.rows
  in
  Alcotest.check value_testable "count a" (vi 2) (Tuple.get row_a "n");
  Alcotest.check value_testable "sum a" (vi 40) (Tuple.get row_a "total")

let test_group_global () =
  let rs =
    eval
      (Algebra.Group
         ( [],
           [ Algebra.count_all "n"; Algebra.agg Algebra.Avg "w" ~output:"avg_w";
             Algebra.agg Algebra.Min "w" ~output:"lo";
             Algebra.agg Algebra.Max "w" ~output:"hi" ],
           Algebra.Base "R" ))
  in
  (match rs.Algebra.rows with
  | [ row ] ->
      Alcotest.check value_testable "count" (vi 3) (Tuple.get row "n");
      Alcotest.check value_testable "avg" (vf 20.) (Tuple.get row "avg_w");
      Alcotest.check value_testable "min" (vi 10) (Tuple.get row "lo");
      Alcotest.check value_testable "max" (vi 30) (Tuple.get row "hi")
  | _ -> Alcotest.fail "expected one global row");
  (* global aggregate over an empty selection still yields one row *)
  let rs0 =
    eval
      (Algebra.Group
         ( [],
           [ Algebra.count_all "n"; Algebra.agg Algebra.Sum "w" ~output:"s" ],
           Algebra.select Predicate.False (Algebra.Base "R") ))
  in
  (match rs0.Algebra.rows with
  | [ row ] ->
      Alcotest.check value_testable "count 0" (vi 0) (Tuple.get row "n");
      Alcotest.check value_testable "sum null" Value.Null (Tuple.get row "s")
  | _ -> Alcotest.fail "expected one row for the empty global group")

let test_group_count_attr_ignores_nulls () =
  (* count(attr) only counts non-null values. *)
  let db' =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.insert db "R" (tuple [ "id", vi 9 ])))
  in
  let rs =
    check_ok
      (Algebra.eval db'
         (Algebra.Group
            ( [],
              [ Algebra.count_all "rows";
                Algebra.agg Algebra.Count "v" ~output:"vs" ],
              Algebra.Base "R" )))
  in
  let row = List.hd rs.Algebra.rows in
  Alcotest.check value_testable "rows" (vi 4) (Tuple.get row "rows");
  Alcotest.check value_testable "non-null vs" (vi 3) (Tuple.get row "vs")

let test_group_errors () =
  check_err_contains ~sub:"unknown key"
    (Algebra.eval db (Algebra.Group ([ "zz" ], [ Algebra.count_all "n" ], Algebra.Base "R")));
  check_err_contains ~sub:"unknown aggregate attribute"
    (Algebra.eval db
       (Algebra.Group ([], [ Algebra.agg Algebra.Sum "zz" ~output:"s" ], Algebra.Base "R")));
  check_err_contains ~sub:"duplicate output"
    (Algebra.eval db
       (Algebra.Group ([ "v" ], [ Algebra.count_all "v" ], Algebra.Base "R")));
  check_err_contains ~sub:"non-numeric"
    (Algebra.eval db
       (Algebra.Group ([], [ Algebra.agg Algebra.Sum "v" ~output:"s" ], Algebra.Base "R")))

let test_sum_mixed_numeric () =
  (* ints and floats mix; the result becomes a float *)
  let s =
    Schema.make_exn ~name:"M"
      ~attributes:[ Attribute.int "id"; Attribute.float "x" ]
      ~key:[ "id" ]
  in
  let db' = Database.create_relation_exn db s in
  let db' =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.insert db' "M" (tuple [ "id", vi 1; "x", vf 1.5 ])))
  in
  let rs =
    check_ok
      (Algebra.eval db'
         (Algebra.Group ([], [ Algebra.agg Algebra.Sum "x" ~output:"s" ], Algebra.Base "M")))
  in
  Alcotest.check value_testable "float sum" (vf 1.5)
    (Tuple.get (List.hd rs.Algebra.rows) "s")

let test_order_take () =
  let rs = eval (Algebra.Order ([ "w", false ], Algebra.Base "R")) in
  Alcotest.(check (list int)) "descending"
    [ 30; 20; 10 ]
    (List.map
       (fun t -> match Tuple.get t "w" with Value.Int i -> i | _ -> -1)
       rs.Algebra.rows);
  let rs2 =
    eval (Algebra.Order ([ "v", true; "w", false ], Algebra.Base "R"))
  in
  Alcotest.(check (list int)) "two keys"
    [ 30; 10; 20 ]
    (List.map
       (fun t -> match Tuple.get t "w" with Value.Int i -> i | _ -> -1)
       rs2.Algebra.rows);
  let rs3 = eval (Algebra.Take (2, Algebra.Order ([ "w", true ], Algebra.Base "R"))) in
  Alcotest.(check int) "limited" 2 (Algebra.cardinality rs3);
  check_err_contains ~sub:"unknown attribute"
    (Algebra.eval db (Algebra.Order ([ "zz", true ], Algebra.Base "R")));
  check_err_contains ~sub:"negative"
    (Algebra.eval db (Algebra.Take (-1, Algebra.Base "R")))

let test_union_commutative () =
  let a = eval (Algebra.Union (Algebra.Base "R", Algebra.Base "T")) in
  let b = eval (Algebra.Union (Algebra.Base "T", Algebra.Base "R")) in
  Alcotest.(check int) "cardinalities agree" (Algebra.cardinality a)
    (Algebra.cardinality b)

let suite =
  [
    Alcotest.test_case "base" `Quick test_base;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "project dedups" `Quick test_project;
    Alcotest.test_case "rename/qualify" `Quick test_rename_qualify;
    Alcotest.test_case "product collision" `Quick test_product_collision;
    Alcotest.test_case "equijoin" `Quick test_join;
    Alcotest.test_case "natural join" `Quick test_natural_join;
    Alcotest.test_case "union/diff/intersect" `Quick test_union_diff_intersect;
    Alcotest.test_case "attributes_of" `Quick test_attributes_of;
    Alcotest.test_case "select idempotent" `Quick test_select_idempotent;
    Alcotest.test_case "union commutative" `Quick test_union_commutative;
    Alcotest.test_case "group basic" `Quick test_group_basic;
    Alcotest.test_case "group global" `Quick test_group_global;
    Alcotest.test_case "count attr ignores nulls" `Quick test_group_count_attr_ignores_nulls;
    Alcotest.test_case "group errors" `Quick test_group_errors;
    Alcotest.test_case "sum mixed numeric" `Quick test_sum_mixed_numeric;
    Alcotest.test_case "order/take" `Quick test_order_take;
  ]
