open Relational
open Test_util

let schema =
  Schema.make_exn ~name:"R"
    ~attributes:[ Attribute.int "id"; Attribute.str "v" ]
    ~key:[ "id" ]

let rel_of l = Relation.of_list_exn schema (List.map tuple l)

let r3 =
  rel_of [ [ "id", vi 1; "v", vs "a" ]; [ "id", vi 2; "v", vs "b" ];
           [ "id", vi 3; "v", vs "c" ] ]

let relation_error_testable =
  Alcotest.testable Relation.pp_error (fun a b ->
      Relation.error_to_string a = Relation.error_to_string b)

let test_empty () =
  let r = Relation.empty schema in
  Alcotest.(check int) "cardinality" 0 (Relation.cardinality r);
  Alcotest.(check bool) "is_empty" true (Relation.is_empty r);
  Alcotest.(check string) "name" "R" (Relation.name r)

let test_insert () =
  Alcotest.(check int) "three rows" 3 (Relation.cardinality r3);
  Alcotest.(check bool) "mem" true (Relation.mem_key r3 [ vi 2 ])

let test_insert_pads_nulls () =
  let r = check_ok ~msg:"insert"
      (Result.map_error Relation.error_to_string
         (Relation.insert (Relation.empty schema) (tuple [ "id", vi 9 ])))
  in
  let t = Option.get (Relation.lookup r [ vi 9 ]) in
  Alcotest.check value_testable "padded" Value.Null (Tuple.get t "v");
  Alcotest.(check int) "full width" 2 (Tuple.cardinal t)

let test_insert_duplicate () =
  match Relation.insert r3 (tuple [ "id", vi 1; "v", vs "z" ]) with
  | Error (Relation.Duplicate_key [ k ]) ->
      Alcotest.check value_testable "dup key" (vi 1) k
  | _ -> Alcotest.fail "expected Duplicate_key"

let test_insert_nonconforming () =
  (match Relation.insert r3 (tuple [ "id", vs "nope" ]) with
  | Error (Relation.Nonconforming _) -> ()
  | _ -> Alcotest.fail "expected Nonconforming");
  match Relation.insert r3 (tuple [ "v", vs "nokey" ]) with
  | Error (Relation.Nonconforming _) -> ()
  | _ -> Alcotest.fail "expected Nonconforming for null key"

let test_delete () =
  let r = check_ok ~msg:"delete"
      (Result.map_error Relation.error_to_string (Relation.delete_key r3 [ vi 2 ]))
  in
  Alcotest.(check int) "two left" 2 (Relation.cardinality r);
  (match Relation.delete_key r3 [ vi 99 ] with
  | Error (Relation.No_such_key _) -> ()
  | _ -> Alcotest.fail "expected No_such_key");
  let r' = check_ok ~msg:"delete_tuple"
      (Result.map_error Relation.error_to_string
         (Relation.delete_tuple r3 (tuple [ "id", vi 1; "v", vs "a" ])))
  in
  Alcotest.(check bool) "1 gone" false (Relation.mem_key r' [ vi 1 ])

let test_replace_same_key () =
  let r = check_ok ~msg:"replace"
      (Result.map_error Relation.error_to_string
         (Relation.replace r3 ~old_key:[ vi 1 ] (tuple [ "id", vi 1; "v", vs "z" ])))
  in
  Alcotest.check value_testable "updated" (vs "z")
    (Tuple.get (Option.get (Relation.lookup r [ vi 1 ])) "v")

let test_replace_key_change () =
  let r = check_ok ~msg:"replace key"
      (Result.map_error Relation.error_to_string
         (Relation.replace r3 ~old_key:[ vi 1 ] (tuple [ "id", vi 10; "v", vs "a" ])))
  in
  Alcotest.(check bool) "old gone" false (Relation.mem_key r [ vi 1 ]);
  Alcotest.(check bool) "new there" true (Relation.mem_key r [ vi 10 ]);
  Alcotest.(check int) "same count" 3 (Relation.cardinality r)

let test_replace_collision () =
  match Relation.replace r3 ~old_key:[ vi 1 ] (tuple [ "id", vi 2; "v", vs "a" ]) with
  | Error (Relation.Duplicate_key _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_key on collision"

let test_replace_missing () =
  match Relation.replace r3 ~old_key:[ vi 99 ] (tuple [ "id", vi 99 ]) with
  | Error (Relation.No_such_key _) -> ()
  | _ -> Alcotest.fail "expected No_such_key"

let test_lookup_mem_tuple () =
  Alcotest.(check bool) "mem_tuple exact" true
    (Relation.mem_tuple r3 (tuple [ "id", vi 1; "v", vs "a" ]));
  Alcotest.(check bool) "mem_tuple differs" false
    (Relation.mem_tuple r3 (tuple [ "id", vi 1; "v", vs "zzz" ]));
  Alcotest.(check bool) "find_matching" true
    (Option.is_some (Relation.find_matching r3 (tuple [ "id", vi 3 ])))

let test_select_order () =
  let sel = Relation.select (Predicate.gt_int "id" 1) r3 in
  Alcotest.(check int) "two match" 2 (List.length sel);
  let all = Relation.to_list r3 in
  Alcotest.(check (list string)) "key order" [ "a"; "b"; "c" ]
    (List.map (fun t -> Fmt.str "%a" Value.pp_plain (Tuple.get t "v")) all)

let test_of_list_error () =
  match
    Relation.of_list schema [ tuple [ "id", vi 1 ]; tuple [ "id", vi 1 ] ]
  with
  | Error (Relation.Duplicate_key _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_key"

let test_equal () =
  Alcotest.(check bool) "equal self" true (Relation.equal r3 r3);
  Alcotest.(check bool) "not equal" false (Relation.equal r3 (Relation.empty schema));
  ignore relation_error_testable

(* Property: inserting distinct keys then deleting them returns empty. *)
let prop_insert_delete_roundtrip =
  QCheck.Test.make ~name:"insert-then-delete roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) small_nat)
    (fun ids ->
      let ids = List.sort_uniq compare ids in
      let r =
        List.fold_left
          (fun r i ->
            match Relation.insert r (tuple [ "id", vi i; "v", vs "x" ]) with
            | Ok r -> r
            | Error _ -> r)
          (Relation.empty schema) ids
      in
      let r =
        List.fold_left
          (fun r i ->
            match Relation.delete_key r [ vi i ] with Ok r -> r | Error _ -> r)
          r ids
      in
      Relation.is_empty r)

let prop_cardinality =
  QCheck.Test.make ~name:"cardinality = distinct keys" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) small_nat)
    (fun ids ->
      let distinct = List.sort_uniq compare ids in
      let r =
        List.fold_left
          (fun r i ->
            match Relation.insert r (tuple [ "id", vi i ]) with
            | Ok r -> r
            | Error _ -> r)
          (Relation.empty schema) ids
      in
      Relation.cardinality r = List.length distinct)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "insert pads nulls" `Quick test_insert_pads_nulls;
    Alcotest.test_case "insert duplicate" `Quick test_insert_duplicate;
    Alcotest.test_case "insert nonconforming" `Quick test_insert_nonconforming;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "replace same key" `Quick test_replace_same_key;
    Alcotest.test_case "replace key change" `Quick test_replace_key_change;
    Alcotest.test_case "replace collision" `Quick test_replace_collision;
    Alcotest.test_case "replace missing" `Quick test_replace_missing;
    Alcotest.test_case "lookup/mem_tuple" `Quick test_lookup_mem_tuple;
    Alcotest.test_case "select & order" `Quick test_select_order;
    Alcotest.test_case "of_list error" `Quick test_of_list_error;
    Alcotest.test_case "equal" `Quick test_equal;
    qtest prop_insert_delete_roundtrip;
    qtest prop_cardinality;
  ]
