open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()
let spec = Penguin.University.omega_translator
let cs345 d = Penguin.University.cs345_instance d

let translate ?(spec = spec) d ~old_i ~new_i =
  Vo_core.Vo_r.translate g d omega spec ~old_instance:old_i ~new_instance:new_i

let modify i label at f =
  check_ok (Vo_core.Request.modify_component i ~label ~at ~f)

let test_r1_identity () =
  let d = db () in
  let i = cs345 d in
  let ops = check_ok (translate d ~old_i:i ~new_i:i) in
  Alcotest.(check int) "identical instances produce no ops" 0 (List.length ops)

let test_r2_nonkey_change () =
  let d = db () in
  let i = cs345 d in
  let i' =
    Instance.with_tuple i (Tuple.set i.Instance.tuple "units" (vi 4))
  in
  let ops = check_ok (translate d ~old_i:i ~new_i:i') in
  (match ops with
  | [ Op.Replace ("COURSES", [ k ], t) ] ->
      Alcotest.check value_testable "same key" (vs "CS345") k;
      Alcotest.check value_testable "units" (vi 4) (Tuple.get t "units");
      Alcotest.check value_testable "title preserved" (vs "Database Systems")
        (Tuple.get t "title")
  | _ -> Alcotest.failf "expected single COURSES replace, got %a" Op.pp_list ops)

let test_r2_grade_change () =
  let d = db () in
  let i = cs345 d in
  let i' = modify i "GRADES" (tuple [ "pid", vi 1 ]) (fun t -> Tuple.set t "grade" (vs "A+")) in
  let ops = check_ok (translate d ~old_i:i ~new_i:i') in
  match ops with
  | [ Op.Replace ("GRADES", [ c; p ], t) ] ->
      Alcotest.check value_testable "course" (vs "CS345") c;
      Alcotest.check value_testable "pid" (vi 1) p;
      Alcotest.check value_testable "grade" (vs "A+") (Tuple.get t "grade")
  | _ -> Alcotest.failf "expected single GRADES replace, got %a" Op.pp_list ops

let ees345 d =
  let old_i = cs345 d in
  old_i, Penguin.University.ees345_replacement old_i

let test_r3_key_replacement_paper_example () =
  let d = db () in
  let old_i, new_i = ees345 d in
  let ops = check_ok (translate d ~old_i ~new_i) in
  (* COURSES replace + DEPARTMENT insert + 2 GRADES replaces + 2
     CURRICULUM fix-ups *)
  Alcotest.(check int) "six ops" 6 (List.length ops);
  let courses_replace =
    List.find (fun o -> Op.is_replace o && Op.relation o = "COURSES") ops
  in
  (match courses_replace with
  | Op.Replace (_, [ old_k ], t) ->
      Alcotest.check value_testable "old key" (vs "CS345") old_k;
      Alcotest.check value_testable "new key" (vs "EES345")
        (Tuple.get t "course_id");
      Alcotest.check value_testable "new department referenced"
        (vs "Engineering Economic Systems")
        (Tuple.get t "dept_name")
  | _ -> Alcotest.fail "bad COURSES op");
  Alcotest.(check bool) "department inserted (paper)" true
    (List.exists (fun o -> Op.is_insert o && Op.relation o = "DEPARTMENT") ops);
  let grade_replaces =
    List.filter (fun o -> Op.is_replace o && Op.relation o = "GRADES") ops
  in
  Alcotest.(check int) "grades keys propagate" 2 (List.length grade_replaces);
  let curr_fixups =
    List.filter (fun o -> Op.is_replace o && Op.relation o = "CURRICULUM") ops
  in
  Alcotest.(check int) "peninsula foreign keys rewritten" 2
    (List.length curr_fixups);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_r3_restrictive_rejects () =
  let d = db () in
  let old_i, new_i = ees345 d in
  check_err_contains ~sub:"not allowed"
    (translate ~spec:Penguin.University.omega_translator_restrictive d ~old_i
       ~new_i)

let test_r3_key_change_denied () =
  let d = db () in
  let old_i, new_i = ees345 d in
  let locked =
    Vo_core.Translator_spec.with_island_key spec "COURSES"
      Vo_core.Translator_spec.forbid_key_changes
  in
  check_err_contains ~sub:"may not be modified"
    (translate ~spec:locked d ~old_i ~new_i)

let test_r3_db_key_replace_denied () =
  let d = db () in
  let old_i, new_i = ees345 d in
  let locked =
    Vo_core.Translator_spec.with_island_key spec "COURSES"
      { Vo_core.Translator_spec.allow_vo_key_change = true;
        allow_db_key_replace = false; allow_merge_with_existing = false }
  in
  check_err_contains ~sub:"is not allowed"
    (translate ~spec:locked d ~old_i ~new_i)

let test_r3_merge_denied_by_paper_translator () =
  (* Renaming CS345 to an EXISTING course id needs the merge permission,
     which the paper's DBA answered NO. *)
  let d = db () in
  let old_i = cs345 d in
  let new_i =
    Instance.with_tuple old_i
      (Tuple.set old_i.Instance.tuple "course_id" (vs "CS101"))
  in
  (* strip children that would inherit the key to keep the scenario small *)
  check_err_contains ~sub:"is not allowed"
    (translate d ~old_i ~new_i)

let test_r3_merge_allowed () =
  let d = db () in
  let merger =
    Vo_core.Translator_spec.with_island_key spec "GRADES"
      { Vo_core.Translator_spec.allow_vo_key_change = true;
        allow_db_key_replace = true; allow_merge_with_existing = true }
  in
  let i = cs345 d in
  (* Re-point the grade of student 1 to student 2, whose grade row
     already exists: old tuple deleted, existing row merged. *)
  let i' =
    check_ok
      (Vo_core.Request.detach_component i ~label:"GRADES" ~at:(tuple [ "pid", vi 2 ]))
  in
  let old_i =
    check_ok
      (Vo_core.Request.detach_component i ~label:"GRADES" ~at:(tuple [ "pid", vi 1 ]))
  in
  (* old view: grade(pid=2); new view: grade(pid=2->pid... ) *)
  ignore i';
  let new_i =
    modify old_i "GRADES" (tuple [ "pid", vi 2 ]) (fun t ->
        Tuple.set (Tuple.set t "pid" (vi 1)) "grade" (vs "B+"))
  in
  let ops = check_ok (translate ~spec:merger d ~old_i ~new_i) in
  Alcotest.(check bool) "delete old grade" true
    (List.exists (fun o -> Op.is_delete o && Op.relation o = "GRADES") ops);
  Alcotest.(check bool) "replace existing grade" true
    (List.exists (fun o -> Op.is_replace o && Op.relation o = "GRADES") ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_peninsula_own_key_prohibited () =
  let d = db () in
  let i = cs345 d in
  let i' =
    modify i "CURRICULUM" (tuple [ "degree", vs "MS CS" ]) (fun t ->
        Tuple.set t "degree" (vs "MS AI"))
  in
  check_err_contains ~sub:"prohibited" (translate d ~old_i:i ~new_i:i')

let test_peninsula_nonkey_change () =
  let d = db () in
  let i = cs345 d in
  let i' =
    modify i "CURRICULUM" (tuple [ "degree", vs "MS CS" ]) (fun t ->
        Tuple.set t "requirement" (vs "elective"))
  in
  let ops = check_ok (translate d ~old_i:i ~new_i:i') in
  (match ops with
  | [ Op.Replace ("CURRICULUM", [ dg; ci ], t) ]
    when Value.equal dg (vs "MS CS") && Value.equal ci (vs "CS345") ->
      Alcotest.check value_testable "requirement" (vs "elective")
        (Tuple.get t "requirement")
  | _ -> Alcotest.failf "unexpected ops %a" Op.pp_list ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_i2_insert_grade () =
  (* Attaching a new GRADES sub-instance inserts it (island insertion). *)
  let d = db () in
  let i = cs345 d in
  let child =
    Instance.make ~label:"GRADES" ~relation:"GRADES"
      ~tuple:(tuple [ "pid", vi 5; "grade", vs "B" ])
      ~children:
        [ "STUDENT#2",
          [ Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
              (tuple [ "pid", vi 5; "degree_program", vs "PhD CS"; "year", vi 2 ]) ] ]
  in
  let new_i =
    check_ok
      (Vo_core.Request.attach_component i ~parent_label:"COURSES"
         ~at:(tuple [ "course_id", vs "CS345" ]) ~child)
  in
  let ops = check_ok (translate d ~old_i:i ~new_i) in
  (match ops with
  | [ Op.Insert ("GRADES", t) ] ->
      Alcotest.check value_testable "inherits course" (vs "CS345")
        (Tuple.get t "course_id")
  | _ -> Alcotest.failf "unexpected %a" Op.pp_list ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_island_subtree_removal_deletes () =
  let d = db () in
  let i = cs345 d in
  let new_i =
    check_ok
      (Vo_core.Request.detach_component i ~label:"GRADES" ~at:(tuple [ "pid", vi 2 ]))
  in
  let ops = check_ok (translate d ~old_i:i ~new_i) in
  (match ops with
  | [ Op.Delete ("GRADES", [ c; p ]) ] ->
      Alcotest.check value_testable "course" (vs "CS345") c;
      Alcotest.check value_testable "pid" (vi 2) p
  | _ -> Alcotest.failf "unexpected %a" Op.pp_list ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_outside_removal_is_noop () =
  let d = db () in
  let i = cs345 d in
  let new_i =
    check_ok
      (Vo_core.Request.detach_component i ~label:"CURRICULUM"
         ~at:(tuple [ "degree", vs "PhD CS" ]))
  in
  let ops = check_ok (translate d ~old_i:i ~new_i) in
  Alcotest.(check int) "shared data untouched" 0 (List.length ops)

let test_i1_outside_modify () =
  let d = db () in
  let i = cs345 d in
  let i' =
    modify i "DEPARTMENT" (tuple [ "dept_name", vs "Computer Science" ])
      (fun t -> Tuple.set t "building" (vs "Allen"))
  in
  let ops = check_ok (translate d ~old_i:i ~new_i:i') in
  (match ops with
  | [ Op.Replace ("DEPARTMENT", [ k ], t) ] ->
      Alcotest.check value_testable "key" (vs "Computer Science") k;
      Alcotest.check value_testable "building" (vs "Allen") (Tuple.get t "building")
  | _ -> Alcotest.failf "unexpected %a" Op.pp_list ops);
  (* denied under the restrictive-translator's locked DEPARTMENT *)
  check_err_contains ~sub:"not allowed"
    (translate ~spec:Penguin.University.omega_translator_restrictive d ~old_i:i
       ~new_i:i')

let test_i4_existing_department_conflict () =
  let d = db () in
  let i = cs345 d in
  (* Move the course to Mathematics but claim a different building:
     existing tuple conflicts -> I-4 replacement of MATHEMATICS row. *)
  let i' =
    modify i "DEPARTMENT" (tuple [ "dept_name", vs "Computer Science" ])
      (fun _ -> tuple [ "dept_name", vs "Mathematics"; "building", vs "NewSloan" ])
  in
  let ops = check_ok (translate d ~old_i:i ~new_i:i') in
  Alcotest.(check bool) "courses rewired" true
    (List.exists
       (fun o ->
         match o with
         | Op.Replace ("COURSES", _, t) ->
             Value.equal (Tuple.get t "dept_name") (vs "Mathematics")
         | _ -> false)
       ops);
  Alcotest.(check bool) "maths row updated (I-4)" true
    (List.exists
       (fun o ->
         match o with
         | Op.Replace ("DEPARTMENT", [ k ], _) -> Value.equal k (vs "Mathematics")
         | _ -> false)
       ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_i3_existing_department_identical () =
  let d = db () in
  let i = cs345 d in
  let i' =
    modify i "DEPARTMENT" (tuple [ "dept_name", vs "Computer Science" ])
      (fun _ -> tuple [ "dept_name", vs "Mathematics"; "building", vs "Sloan" ])
  in
  let ops = check_ok (translate d ~old_i:i ~new_i:i') in
  (* only the COURSES rewiring; Mathematics row already agrees (I-3) *)
  (match ops with
  | [ Op.Replace ("COURSES", _, t) ] ->
      Alcotest.check value_testable "rewired" (vs "Mathematics")
        (Tuple.get t "dept_name")
  | _ -> Alcotest.failf "unexpected %a" Op.pp_list ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_replacement_not_allowed () =
  let d = db () in
  let i = cs345 d in
  let locked = { spec with Vo_core.Translator_spec.allow_replacement = false } in
  check_err_contains ~sub:"does not allow"
    (translate ~spec:locked d ~old_i:i ~new_i:i)

let test_stale_old_instance () =
  let d = db () in
  let i = cs345 d in
  let stale = Instance.with_tuple i (Tuple.set i.Instance.tuple "units" (vi 9)) in
  let fresh = Instance.with_tuple i (Tuple.set i.Instance.tuple "units" (vi 2)) in
  check_err_contains ~sub:"stale" (translate d ~old_i:stale ~new_i:fresh)

let suite =
  [
    Alcotest.test_case "R-1 identity" `Quick test_r1_identity;
    Alcotest.test_case "R-2 pivot nonkey change" `Quick test_r2_nonkey_change;
    Alcotest.test_case "R-2 grade change" `Quick test_r2_grade_change;
    Alcotest.test_case "R-3 EES345 (paper example)" `Quick test_r3_key_replacement_paper_example;
    Alcotest.test_case "R-3 restrictive rejects (paper)" `Quick test_r3_restrictive_rejects;
    Alcotest.test_case "R-3 vo key denied" `Quick test_r3_key_change_denied;
    Alcotest.test_case "R-3 db key denied" `Quick test_r3_db_key_replace_denied;
    Alcotest.test_case "R-3 merge denied (paper answer)" `Quick test_r3_merge_denied_by_paper_translator;
    Alcotest.test_case "R-3 merge allowed" `Quick test_r3_merge_allowed;
    Alcotest.test_case "peninsula own key prohibited" `Quick test_peninsula_own_key_prohibited;
    Alcotest.test_case "peninsula nonkey change" `Quick test_peninsula_nonkey_change;
    Alcotest.test_case "I-2 attach grade" `Quick test_i2_insert_grade;
    Alcotest.test_case "island subtree removal" `Quick test_island_subtree_removal_deletes;
    Alcotest.test_case "outside removal no-op" `Quick test_outside_removal_is_noop;
    Alcotest.test_case "I-1 outside modify" `Quick test_i1_outside_modify;
    Alcotest.test_case "I-4 conflicting existing" `Quick test_i4_existing_department_conflict;
    Alcotest.test_case "I-3 identical existing" `Quick test_i3_existing_department_identical;
    Alcotest.test_case "replacement not allowed" `Quick test_replacement_not_allowed;
    Alcotest.test_case "stale old instance" `Quick test_stale_old_instance;
  ]
