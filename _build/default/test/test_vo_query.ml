open Relational
open Viewobject
open Test_util

let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()
let student = Penguin.University.student_label

let run c = Vo_query.run (db ()) omega c

let course_ids is =
  List.sort String.compare
    (List.map
       (fun (i : Instance.t) ->
         Fmt.str "%a" Value.pp_plain (Tuple.get i.Instance.tuple "course_id"))
       is)

let test_true () =
  Alcotest.(check int) "all instances" 4 (List.length (run Vo_query.C_true))

let test_pivot_predicate () =
  let is = run (Vo_query.C_node ("COURSES", Predicate.eq_str "level" "grad")) in
  Alcotest.(check (list string)) "grad courses" [ "CS345"; "EE280" ] (course_ids is)

let test_child_predicate_existential () =
  (* Courses in which SOME student is a PhD CS student. *)
  let is =
    run (Vo_query.C_node (student, Predicate.eq_str "degree_program" "PhD CS"))
  in
  Alcotest.(check (list string)) "has a PhD CS student" [ "CS345"; "EE280" ]
    (course_ids is)

let test_count () =
  let is = run (Vo_query.C_count (student, Predicate.Lt, 3)) in
  Alcotest.(check (list string)) "fewer than 3 enrolled"
    [ "CS345"; "MATH51" ]
    (course_ids is)

let test_figure4_query () =
  let q =
    Vo_query.C_and
      ( Vo_query.C_node ("COURSES", Predicate.eq_str "level" "grad"),
        Vo_query.C_count (student, Predicate.Lt, 5) )
  in
  match run q with
  | [ i ] ->
      Alcotest.check value_testable "exactly CS345 (Fig 4)" (vs "CS345")
        (Tuple.get i.Instance.tuple "course_id")
  | l -> Alcotest.failf "expected one instance, got %d" (List.length l)

let test_or_not () =
  let q =
    Vo_query.C_or
      ( Vo_query.C_node ("COURSES", Predicate.eq_str "course_id" "MATH51"),
        Vo_query.C_node ("COURSES", Predicate.eq_str "course_id" "CS101") )
  in
  Alcotest.(check (list string)) "or" [ "CS101"; "MATH51" ] (course_ids (run q));
  let q2 = Vo_query.C_not (Vo_query.C_node ("COURSES", Predicate.eq_str "level" "grad")) in
  Alcotest.(check (list string)) "not" [ "CS101"; "MATH51" ] (course_ids (run q2))

let test_pushdown () =
  let p = Predicate.eq_str "level" "grad" in
  let q =
    Vo_query.C_and
      (Vo_query.C_node ("COURSES", p), Vo_query.C_count (student, Predicate.Lt, 5))
  in
  Alcotest.(check bool) "pivot predicate extracted" true
    (Vo_query.pushdown omega q = p);
  (* predicates under OR or NOT must not be pushed down *)
  let q2 = Vo_query.C_or (Vo_query.C_node ("COURSES", p), Vo_query.C_true) in
  Alcotest.(check bool) "no pushdown under or" true
    (Vo_query.pushdown omega q2 = Predicate.True);
  let q3 = Vo_query.C_not (Vo_query.C_node ("COURSES", p)) in
  Alcotest.(check bool) "no pushdown under not" true
    (Vo_query.pushdown omega q3 = Predicate.True);
  (* non-pivot nodes are never pushed down *)
  Alcotest.(check bool) "child predicate not pushed" true
    (Vo_query.pushdown omega (Vo_query.C_node (student, p)) = Predicate.True)

let test_pushdown_equivalence () =
  (* With and without pushdown the result sets agree. *)
  let q =
    Vo_query.C_and
      ( Vo_query.C_node ("COURSES", Predicate.eq_str "level" "undergrad"),
        Vo_query.C_count ("GRADES", Predicate.Geq, 1) )
  in
  let with_pd = run q in
  let without_pd =
    List.filter (Vo_query.holds q) (Instantiate.instantiate (db ()) omega)
  in
  Alcotest.(check (list string)) "same results" (course_ids without_pd)
    (course_ids with_pd)

let test_holds_nested_counts () =
  let i = Penguin.University.cs345_instance (db ()) in
  Alcotest.(check bool) "two grades" true
    (Vo_query.holds (Vo_query.C_count ("GRADES", Predicate.Eq, 2)) i);
  Alcotest.(check bool) "two students nested" true
    (Vo_query.holds (Vo_query.C_count (student, Predicate.Eq, 2)) i);
  Alcotest.(check bool) "no ghosts" true
    (Vo_query.holds (Vo_query.C_count ("GHOST", Predicate.Eq, 0)) i)

let suite =
  [
    Alcotest.test_case "true" `Quick test_true;
    Alcotest.test_case "pivot predicate" `Quick test_pivot_predicate;
    Alcotest.test_case "child predicate existential" `Quick test_child_predicate_existential;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "figure 4 query" `Quick test_figure4_query;
    Alcotest.test_case "or/not" `Quick test_or_not;
    Alcotest.test_case "pushdown" `Quick test_pushdown;
    Alcotest.test_case "pushdown equivalence" `Quick test_pushdown_equivalence;
    Alcotest.test_case "nested counts" `Quick test_holds_nested_counts;
  ]
