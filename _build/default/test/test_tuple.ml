open Relational
open Test_util

let s_people =
  Schema.make_exn ~name:"P"
    ~attributes:[ Attribute.int "pid"; Attribute.str "name"; Attribute.str "dept" ]
    ~key:[ "pid" ]

let t1 = tuple [ "pid", vi 1; "name", vs "Ada"; "dept", vs "CS" ]

let test_make_get () =
  Alcotest.check value_testable "get bound" (vs "Ada") (Tuple.get t1 "name");
  Alcotest.check value_testable "get absent is null" Value.Null
    (Tuple.get t1 "missing");
  Alcotest.(check (option bool)) "get_opt absent" None
    (Option.map (fun _ -> true) (Tuple.get_opt t1 "missing"));
  Alcotest.(check bool) "mem" true (Tuple.mem t1 "pid");
  Alcotest.(check int) "cardinal" 3 (Tuple.cardinal t1)

let test_duplicate_bindings () =
  let t = tuple [ "a", vi 1; "a", vi 2 ] in
  Alcotest.check value_testable "later binding wins" (vi 2) (Tuple.get t "a")

let test_set_remove () =
  let t = Tuple.set t1 "name" (vs "Bea") in
  Alcotest.check value_testable "set" (vs "Bea") (Tuple.get t "name");
  let t = Tuple.remove t "dept" in
  Alcotest.(check bool) "removed" false (Tuple.mem t "dept");
  Alcotest.check value_testable "original untouched" (vs "Ada") (Tuple.get t1 "name")

let test_project () =
  let p = Tuple.project [ "pid"; "name" ] t1 in
  Alcotest.(check (list string)) "attrs" [ "name"; "pid" ] (Tuple.attributes p);
  let pn = Tuple.project_null [ "pid"; "ghost" ] t1 in
  Alcotest.check value_testable "project_null pads" Value.Null (Tuple.get pn "ghost");
  Alcotest.(check int) "project_null width" 2 (Tuple.cardinal pn)

let test_union () =
  let a = tuple [ "x", vi 1; "y", vi 2 ] in
  let b = tuple [ "y", vi 9; "z", vi 3 ] in
  let u = Tuple.union a b in
  Alcotest.check value_testable "right wins" (vi 9) (Tuple.get u "y");
  Alcotest.(check int) "width" 3 (Tuple.cardinal u)

let test_rename () =
  let r = Tuple.rename_attrs [ "pid", "id" ] t1 in
  Alcotest.(check bool) "renamed" true (Tuple.mem r "id");
  Alcotest.(check bool) "old gone" false (Tuple.mem r "pid");
  Alcotest.check value_testable "value preserved" (vi 1) (Tuple.get r "id")

let test_equal_on () =
  let a = tuple [ "x", vi 1; "y", vi 2 ] in
  let b = tuple [ "x", vi 1; "y", vi 3 ] in
  Alcotest.(check bool) "equal on x" true (Tuple.equal_on [ "x" ] a b);
  Alcotest.(check bool) "not equal on y" false (Tuple.equal_on [ "y" ] a b);
  Alcotest.(check bool) "nulls equal" true
    (Tuple.equal_on [ "z" ] a b)

let test_key_of () =
  Alcotest.check (Alcotest.list value_testable) "key" [ vi 1 ]
    (Tuple.key_of s_people t1)

let test_conforms () =
  check_ok (Tuple.conforms s_people t1) |> ignore;
  ignore
    (check_err (Tuple.conforms s_people (tuple [ "pid", vi 1; "extra", vi 2 ])));
  ignore
    (check_err (Tuple.conforms s_people (tuple [ "pid", vs "oops" ])));
  ignore
    (check_err
       (Tuple.conforms s_people
          (tuple [ "pid", Value.Null; "name", vs "x" ])))

let test_matches () =
  let owner = tuple [ "k", vi 5 ] in
  let owned = tuple [ "fk", vi 5 ] in
  Alcotest.(check bool) "matches" true
    (Tuple.matches ~on:([ "k" ], [ "fk" ]) owner owned);
  Alcotest.(check bool) "no match" false
    (Tuple.matches ~on:([ "k" ], [ "fk" ]) owner (tuple [ "fk", vi 6 ]));
  Alcotest.(check bool) "null never matches" false
    (Tuple.matches ~on:([ "k" ], [ "fk" ]) (tuple [ "k", Value.Null ])
       (tuple [ "fk", Value.Null ]))

let test_has_nulls_on () =
  Alcotest.(check bool) "absent is null" true (Tuple.has_nulls_on [ "zz" ] t1);
  Alcotest.(check bool) "bound" false (Tuple.has_nulls_on [ "pid" ] t1)

let attr_gen = QCheck.Gen.(map (fun i -> "a" ^ string_of_int i) (int_bound 5))

let tuple_gen =
  QCheck.Gen.(
    map Tuple.make
      (list_size (int_bound 6)
         (pair attr_gen (map (fun i -> Value.Int i) (int_bound 100)))))

let tuple_arb = QCheck.make ~print:(Fmt.str "%a" Tuple.pp) tuple_gen

let prop_union_idempotent =
  QCheck.Test.make ~name:"union idempotent" ~count:200 tuple_arb (fun t ->
      Tuple.equal (Tuple.union t t) t)

let prop_project_subset =
  QCheck.Test.make ~name:"project yields subset of attrs" ~count:200 tuple_arb
    (fun t ->
      let p = Tuple.project [ "a0"; "a1" ] t in
      List.for_all (fun a -> List.mem a [ "a0"; "a1" ]) (Tuple.attributes p))

let prop_equal_reflexive =
  QCheck.Test.make ~name:"tuple equal reflexive" ~count:200 tuple_arb (fun t ->
      Tuple.equal t t)

let suite =
  [
    Alcotest.test_case "make/get" `Quick test_make_get;
    Alcotest.test_case "duplicate bindings" `Quick test_duplicate_bindings;
    Alcotest.test_case "set/remove" `Quick test_set_remove;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "equal_on" `Quick test_equal_on;
    Alcotest.test_case "key_of" `Quick test_key_of;
    Alcotest.test_case "conforms" `Quick test_conforms;
    Alcotest.test_case "matches" `Quick test_matches;
    Alcotest.test_case "has_nulls_on" `Quick test_has_nulls_on;
    qtest prop_union_idempotent;
    qtest prop_project_subset;
    qtest prop_equal_reflexive;
  ]
