open Relational
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()

let test_instantiate_all () =
  let is = Instantiate.instantiate (db ()) omega in
  Alcotest.(check int) "one instance per course" 4 (List.length is)

let test_instantiate_where () =
  let is =
    Instantiate.instantiate ~where:(Predicate.eq_str "level" "grad") (db ()) omega
  in
  Alcotest.(check int) "two grad courses" 2 (List.length is)

let test_cs345_shape () =
  let i = Penguin.University.cs345_instance (db ()) in
  check_ok (Instance.conforms omega i);
  Alcotest.(check int) "2 grades" 2 (List.length (Instance.children_of i "GRADES"));
  Alcotest.(check int) "1 department" 1
    (List.length (Instance.children_of i "DEPARTMENT"));
  Alcotest.(check int) "2 curriculum rows" 2
    (List.length (Instance.children_of i "CURRICULUM"));
  let grade1 = List.hd (Instance.children_of i "GRADES") in
  Alcotest.(check int) "nested student" 1
    (List.length (Instance.children_of grade1 "STUDENT#2"));
  (* node tuples are projected: no dept_name on the pivot *)
  Alcotest.(check bool) "projected pivot" false
    (Tuple.mem i.Instance.tuple "dept_name")

let test_multi_hop_instantiation () =
  (* omega' reaches STUDENT through GRADES without including it. *)
  let i =
    List.find
      (fun (i : Instance.t) -> Tuple.get i.Instance.tuple "course_id" = vs "CS345")
      (Instantiate.instantiate (db ()) Penguin.University.omega_prime)
  in
  let students = Instance.children_of i Penguin.University.student_label in
  Alcotest.(check int) "two students through the path" 2 (List.length students);
  (* the CS department has one faculty member (pid 7), reached through
     the three-connection DEPARTMENT-PEOPLE path *)
  Alcotest.(check int) "one CS faculty member" 1
    (List.length (Instance.children_of i Penguin.University.faculty_label))

let test_multi_hop_dedup () =
  (* EE280 has two graders in the same degree program; path results are
     deduplicated by key. *)
  let i =
    List.find
      (fun (i : Instance.t) -> Tuple.get i.Instance.tuple "course_id" = vs "EE280")
      (Instantiate.instantiate (db ()) Penguin.University.omega_prime)
  in
  let students = Instance.children_of i Penguin.University.student_label in
  Alcotest.(check int) "five distinct students" 5 (List.length students)

let test_follow_path_empty () =
  let d = db () in
  let course = tuple [ "course_id", vs "CS345" ] in
  Alcotest.(check (list tuple_testable)) "empty path returns the tuple"
    [ course ]
    (Instantiate.follow_path d [] course)

let test_extend_inherited_down () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let e = check_ok (Instantiate.extend_inherited g omega i) in
  let grade = List.hd (Instance.children_of e "GRADES") in
  Alcotest.check value_testable "grades inherit course_id" (vs "CS345")
    (Tuple.get grade.Instance.tuple "course_id");
  let curr = List.hd (Instance.children_of e "CURRICULUM") in
  Alcotest.check value_testable "curriculum inherits course_id" (vs "CS345")
    (Tuple.get curr.Instance.tuple "course_id");
  let student = List.hd (Instance.children_of grade "STUDENT#2") in
  Alcotest.check value_testable "student inherits pid" (vi 1)
    (Tuple.get student.Instance.tuple "pid")

let test_extend_inherited_up () =
  (* The pivot's dept_name is projected out; extension recovers it from
     the DEPARTMENT child. *)
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let e = check_ok (Instantiate.extend_inherited g omega i) in
  Alcotest.check value_testable "lifted from child" (vs "Computer Science")
    (Tuple.get e.Instance.tuple "dept_name")

let test_extend_conflicting_children () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let dept l =
    Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
      (tuple [ "dept_name", vs l ])
  in
  (* Two DEPARTMENT children with different names: conflicting lift. *)
  let i = Instance.with_children i "DEPARTMENT" [ dept "A"; dept "B" ] in
  check_err_contains ~sub:"conflicting values"
    (Instantiate.extend_inherited g omega i)

let test_extend_multi_hop_rejected () =
  let d = db () in
  let i =
    List.hd (Instantiate.instantiate (d) Penguin.University.omega_prime)
  in
  check_err_contains ~sub:"multi-connection"
    (Instantiate.extend_inherited g Penguin.University.omega_prime i)

let test_full_key () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let e = check_ok (Instantiate.extend_inherited g omega i) in
  let grade = List.hd (Instance.children_of e "GRADES") in
  Alcotest.check (Alcotest.list value_testable) "grades full key"
    [ vs "CS345"; vi 1 ]
    (check_ok (Instantiate.full_key g omega "GRADES" grade.Instance.tuple));
  check_err_contains ~sub:"unbound or null"
    (Instantiate.full_key g omega "GRADES" (tuple [ "grade", vs "A" ]));
  check_err_contains ~sub:"no node"
    (Instantiate.full_key g omega "GHOST" Tuple.empty)

let suite =
  [
    Alcotest.test_case "instantiate all" `Quick test_instantiate_all;
    Alcotest.test_case "instantiate where" `Quick test_instantiate_where;
    Alcotest.test_case "cs345 shape (Fig 4)" `Quick test_cs345_shape;
    Alcotest.test_case "multi-hop path (Fig 3)" `Quick test_multi_hop_instantiation;
    Alcotest.test_case "multi-hop dedup" `Quick test_multi_hop_dedup;
    Alcotest.test_case "follow_path empty" `Quick test_follow_path_empty;
    Alcotest.test_case "extend inherited down" `Quick test_extend_inherited_down;
    Alcotest.test_case "extend inherited up" `Quick test_extend_inherited_up;
    Alcotest.test_case "extend conflict" `Quick test_extend_conflicting_children;
    Alcotest.test_case "extend multi-hop rejected" `Quick test_extend_multi_hop_rejected;
    Alcotest.test_case "full_key" `Quick test_full_key;
  ]
