test/test_database.ml: Alcotest Attribute Database List Op Option Relation Relational Result Schema Test_util Transaction Tuple
