test/test_keller.ml: Alcotest Algebra Astring_contains Database Keller List Op Option Predicate Relation Relational Sql String Test_util Tuple
