test/test_schema.ml: Alcotest Attribute Option Relational Schema Test_util Value
