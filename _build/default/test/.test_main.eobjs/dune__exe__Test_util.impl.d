test/test_util.ml: Alcotest Astring_contains Op QCheck_alcotest Relational Transaction Tuple Value Vo_core
