test/test_properties.ml: Database Fmt Instance Instantiate Integrity List Op Penguin Predicate QCheck Relation Relational Result String Structural Test_util Transaction Tuple Value Viewobject Vo_core
