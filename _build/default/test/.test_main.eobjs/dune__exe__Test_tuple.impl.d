test/test_tuple.ml: Alcotest Attribute Fmt List Option QCheck Relational Schema Test_util Tuple Value
