test/test_connection.ml: Alcotest Attribute Connection List Relational Schema Structural Test_util
