test/test_randgraph.ml: Array Attribute Connection Definition Dump Expansion Fmt Generate Island List Metric Penguin QCheck Relational Result Schema Schema_graph Structural Test_util Viewobject
