test/test_penguin.ml: Alcotest Algebra Astring_contains Database Definition Instance List Penguin Predicate Relation Relational Sql String Test_util Tuple Viewobject Vo_core Vo_query
