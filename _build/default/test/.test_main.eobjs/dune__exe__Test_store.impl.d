test/test_store.ml: Alcotest Database Definition Filename Fmt Instance List Penguin Relational Sexp Sys Test_util Value Viewobject Vo_core
