test/test_audit.ml: Alcotest Astring_contains List Penguin Structural Translator_spec Vo_core
