test/test_upql.ml: Alcotest Astring_contains Database Fmt List Option Penguin Relation Relational String Test_util Tuple Vo_core
