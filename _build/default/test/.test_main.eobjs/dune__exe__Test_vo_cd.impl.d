test/test_vo_cd.ml: Alcotest Astring_contains Database Fmt Instance Integrity List Op Penguin Relation Relational Result Structural Test_util Transaction Tuple Viewobject Vo_core
