test/test_generate.ml: Alcotest Definition Fmt Generate List Metric Penguin Relational Schema Schema_graph Structural Test_util Viewobject
