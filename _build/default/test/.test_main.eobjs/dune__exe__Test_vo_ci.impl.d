test/test_vo_ci.ml: Alcotest Database Instance Integrity List Op Option Penguin Relation Relational Structural Test_util Transaction Tuple Viewobject Vo_core
