test/test_expansion.ml: Alcotest Astring_contains Expansion Fmt List Metric Option Penguin Structural Viewobject
