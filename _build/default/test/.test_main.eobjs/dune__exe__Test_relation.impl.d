test/test_relation.ml: Alcotest Attribute Fmt List Option Predicate QCheck Relation Relational Result Schema Test_util Tuple Value
