test/test_predicate.ml: Alcotest List Predicate Relational String Test_util Value
