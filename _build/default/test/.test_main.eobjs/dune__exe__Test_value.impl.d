test/test_value.ml: Alcotest Fmt List Option QCheck Relational Test_util Value
