test/test_island.ml: Alcotest Connection Island List Penguin Structural Viewobject
