test/test_oql.ml: Alcotest Fmt Instance List Oql Penguin Relational String Test_util Tuple Value Viewobject
