test/test_index.ml: Alcotest Attribute Database Fmt List Penguin QCheck Relation Relational Result Schema Test_util Tuple Value Viewobject Vo_core
