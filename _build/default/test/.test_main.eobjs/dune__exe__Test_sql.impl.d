test/test_sql.ml: Alcotest Algebra Astring_contains Database List Option Relation Relational Sql Sql_lexer Sql_parser Test_util Tuple Value
