test/test_definition.ml: Alcotest Astring_contains Connection Definition List Option Penguin Schema_graph Structural Test_util Viewobject
