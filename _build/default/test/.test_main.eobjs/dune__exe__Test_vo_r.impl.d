test/test_vo_r.ml: Alcotest Instance Integrity List Op Penguin Relational Structural Test_util Transaction Tuple Value Viewobject Vo_core
