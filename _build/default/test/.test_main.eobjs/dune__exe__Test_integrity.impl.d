test/test_integrity.ml: Alcotest Astring_contains Connection Database Integrity List Op Option Penguin Relation Relational Sql String Structural Test_util Transaction Tuple
