test/test_schema_lang.ml: Alcotest Connection List Metric Penguin Relational Schema_graph Schema_lang String Structural Test_util Viewobject
