test/test_dialog.ml: Alcotest Astring_contains Connection Dialog Filename Fmt Integrity List Penguin Schema_graph String Structural Sys Translator_spec Vo_core
