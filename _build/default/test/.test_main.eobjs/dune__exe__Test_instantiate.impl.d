test/test_instantiate.ml: Alcotest Instance Instantiate List Penguin Predicate Relational Test_util Tuple Viewobject
