test/test_deep_island.ml: Alcotest Database Instance Integrity List Op Penguin Relation Relational Structural Test_util Transaction Tuple Value Viewobject Vo_core
