test/test_instance.ml: Alcotest Astring_contains Instance List Penguin Relational Request Test_util Tuple Viewobject Vo_core
