test/test_engine.ml: Alcotest Astring_contains Database Instance Instantiate Integrity List Op Penguin Relation Relational Result Structural Test_util Tuple Value Viewobject Vo_core
