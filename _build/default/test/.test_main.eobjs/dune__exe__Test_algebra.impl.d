test/test_algebra.ml: Alcotest Algebra Attribute Database List Predicate Relational Result Schema Test_util Tuple Value
