test/test_schema_graph.ml: Alcotest Astring_contains Connection List Penguin Relational Schema_graph Structural Test_util
