test/test_table.ml: Alcotest Algebra Astring_contains Attribute Database Relation Relational Schema String Table Test_util
