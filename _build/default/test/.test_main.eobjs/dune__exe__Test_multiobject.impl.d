test/test_multiobject.ml: Alcotest Astring_contains Definition Instance List Penguin Relational Test_util Tuple Value Viewobject Vo_core
