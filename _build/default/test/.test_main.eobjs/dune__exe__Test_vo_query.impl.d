test/test_vo_query.ml: Alcotest Fmt Instance Instantiate List Penguin Predicate Relational String Test_util Tuple Value Viewobject Vo_query
