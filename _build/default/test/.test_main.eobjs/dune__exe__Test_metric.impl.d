test/test_metric.ml: Alcotest Connection List Metric Penguin Schema_graph Structural
