test/test_json.ml: Alcotest Astring_contains Instance Instantiate Penguin Relational String Test_util Value Viewobject
