test/test_csv.ml: Alcotest Attribute Csv List Option QCheck Relation Relational Schema Test_util Tuple Value
