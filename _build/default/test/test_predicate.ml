open Relational
open Test_util

let t = tuple [ "a", vi 5; "b", vs "x"; "c", Value.Null ]

let ev p = Predicate.eval p t

let test_comparisons () =
  Alcotest.(check bool) "eq" true (ev (Predicate.eq_int "a" 5));
  Alcotest.(check bool) "neq" true (ev (Predicate.Cmp ("a", Predicate.Neq, vi 6)));
  Alcotest.(check bool) "lt" true (ev (Predicate.lt_int "a" 6));
  Alcotest.(check bool) "leq" true (ev (Predicate.Cmp ("a", Predicate.Leq, vi 5)));
  Alcotest.(check bool) "gt" true (ev (Predicate.gt_int "a" 4));
  Alcotest.(check bool) "geq false" false
    (ev (Predicate.Cmp ("a", Predicate.Geq, vi 6)));
  Alcotest.(check bool) "str eq" true (ev (Predicate.eq_str "b" "x"))

let test_null_semantics () =
  Alcotest.(check bool) "null cmp is false" false (ev (Predicate.eq_int "c" 0));
  Alcotest.(check bool) "null neq is false" false
    (ev (Predicate.Cmp ("c", Predicate.Neq, vi 0)));
  Alcotest.(check bool) "is_null" true (ev (Predicate.Is_null "c"));
  Alcotest.(check bool) "not_null" true (ev (Predicate.Not_null "a"));
  Alcotest.(check bool) "absent attr is null" true (ev (Predicate.Is_null "zz"))

let test_connectives () =
  let p = Predicate.(eq_int "a" 5 &&& eq_str "b" "x") in
  Alcotest.(check bool) "and" true (ev p);
  Alcotest.(check bool) "or" true (ev Predicate.(eq_int "a" 0 ||| eq_str "b" "x"));
  Alcotest.(check bool) "not" false (ev (Predicate.Not p));
  Alcotest.(check bool) "true" true (ev Predicate.True);
  Alcotest.(check bool) "false" false (ev Predicate.False)

let test_smart_constructors () =
  Alcotest.(check bool) "true &&& p = p" true
    (Predicate.( &&& ) Predicate.True (Predicate.eq_int "a" 5) = Predicate.eq_int "a" 5);
  Alcotest.(check bool) "false ||| p = p" true
    (Predicate.( ||| ) Predicate.False (Predicate.eq_int "a" 5)
    = Predicate.eq_int "a" 5);
  Alcotest.(check bool) "false &&& p = false" true
    (Predicate.( &&& ) Predicate.False (Predicate.eq_int "a" 5) = Predicate.False)

let test_cmp_attr () =
  let t2 = tuple [ "x", vi 3; "y", vi 3; "z", vi 4 ] in
  Alcotest.(check bool) "attr eq" true
    (Predicate.eval (Predicate.Cmp_attr ("x", Predicate.Eq, "y")) t2);
  Alcotest.(check bool) "attr lt" true
    (Predicate.eval (Predicate.Cmp_attr ("x", Predicate.Lt, "z")) t2)

let test_attributes () =
  let p =
    Predicate.(
      And
        ( Or (eq_int "a" 1, Cmp_attr ("b", Eq, "c")),
          Not (Is_null "a") ))
  in
  Alcotest.(check (list string)) "mentioned attrs" [ "a"; "b"; "c" ]
    (List.sort String.compare (Predicate.attributes p))

let test_matches_tuple () =
  let p = Predicate.matches_tuple (tuple [ "a", vi 5; "c", Value.Null ]) in
  Alcotest.(check bool) "matches itself" true (ev p);
  Alcotest.(check bool) "fails on other" false
    (Predicate.eval p (tuple [ "a", vi 6 ]))

let test_conj () =
  Alcotest.(check bool) "empty conj is true" true (ev (Predicate.conj []));
  Alcotest.(check bool) "conj all" true
    (ev (Predicate.conj [ Predicate.eq_int "a" 5; Predicate.eq_str "b" "x" ]))

let es s = Predicate.eval_scalar (tuple [ "i", vi 10; "f", vf 2.5; "s", vs "ab"; "n", Value.Null ]) s

let test_scalar_arithmetic () =
  let open Predicate in
  Alcotest.check value_testable "int add" (vi 13) (es (S_add (S_attr "i", S_const (vi 3))));
  Alcotest.check value_testable "int sub" (vi 7) (es (S_sub (S_attr "i", S_const (vi 3))));
  Alcotest.check value_testable "int mul" (vi 30) (es (S_mul (S_attr "i", S_const (vi 3))));
  Alcotest.check value_testable "int div truncates" (vi 3) (es (S_div (S_attr "i", S_const (vi 3))));
  Alcotest.check value_testable "int mod" (vi 1) (es (S_mod (S_attr "i", S_const (vi 3))));
  Alcotest.check value_testable "neg" (vi (-10)) (es (S_neg (S_attr "i")));
  Alcotest.check value_testable "float promotes" (vf 12.5)
    (es (S_add (S_attr "i", S_attr "f")));
  Alcotest.check value_testable "float div" (vf 4.0)
    (es (S_div (S_attr "i", S_const (vf 2.5))))

let test_scalar_nulls_and_errors () =
  let open Predicate in
  Alcotest.check value_testable "null propagates" Value.Null
    (es (S_add (S_attr "n", S_const (vi 1))));
  Alcotest.check value_testable "div by zero is null" Value.Null
    (es (S_div (S_attr "i", S_const (vi 0))));
  Alcotest.check value_testable "type mismatch is null" Value.Null
    (es (S_add (S_attr "s", S_const (vi 1))));
  Alcotest.check value_testable "neg of string is null" Value.Null
    (es (S_neg (S_attr "s")));
  Alcotest.check value_testable "concat" (vs "abcd")
    (es (S_concat (S_attr "s", S_const (vs "cd"))));
  Alcotest.check value_testable "concat mismatch" Value.Null
    (es (S_concat (S_attr "s", S_const (vi 1))))

let test_cmp_scalar () =
  let open Predicate in
  let t2 = tuple [ "a", vi 5; "b", vi 2 ] in
  Alcotest.(check bool) "computed comparison" true
    (eval (Cmp_scalar (S_mul (S_attr "a", S_const (vi 2)), Gt, S_const (vi 9))) t2);
  Alcotest.(check bool) "null comparison is false" false
    (eval (Cmp_scalar (S_div (S_attr "a", S_const (vi 0)), Eq, S_const Value.Null)) t2);
  Alcotest.(check (list string)) "attrs include scalar refs" [ "a"; "b" ]
    (List.sort String.compare
       (attributes (Cmp_scalar (S_add (S_attr "a", S_attr "b"), Lt, S_attr "a"))))

let suite =
  [
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "scalar arithmetic" `Quick test_scalar_arithmetic;
    Alcotest.test_case "scalar nulls/errors" `Quick test_scalar_nulls_and_errors;
    Alcotest.test_case "cmp_scalar" `Quick test_cmp_scalar;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "connectives" `Quick test_connectives;
    Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
    Alcotest.test_case "attr-to-attr" `Quick test_cmp_attr;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "matches_tuple" `Quick test_matches_tuple;
    Alcotest.test_case "conj" `Quick test_conj;
  ]
