open Structural

let g = Penguin.University.graph

let test_edge_weights () =
  let m = Metric.default in
  let conn = Connection.ownership "COURSES" "GRADES" ~on:([ "course_id" ], [ "course_id" ]) in
  Alcotest.(check (float 1e-9)) "own fwd" 1.0
    (Metric.edge_weight m { Schema_graph.conn; forward = true });
  Alcotest.(check (float 1e-9)) "own inv" 0.9
    (Metric.edge_weight m { Schema_graph.conn; forward = false })

let test_path_relevance () =
  let m = Metric.default in
  Alcotest.(check (float 1e-9)) "empty path" 1.0 (Metric.path_relevance m []);
  let c1 = Connection.reference "COURSES" "DEPARTMENT" ~on:([ "dept_name" ], [ "dept_name" ]) in
  let c2 = Connection.reference "PEOPLE" "DEPARTMENT" ~on:([ "dept_name" ], [ "dept_name" ]) in
  let path =
    [ { Schema_graph.conn = c1; forward = true };
      { Schema_graph.conn = c2; forward = false } ]
  in
  Alcotest.(check (float 1e-9)) "product" (0.9 *. 0.7) (Metric.path_relevance m path)

let test_relevance_map () =
  let m = Metric.default in
  let map = Metric.relevance_map m g ~pivot:"COURSES" in
  let get rel = List.assoc rel map in
  Alcotest.(check (float 1e-9)) "pivot" 1.0 (get "COURSES");
  Alcotest.(check (float 1e-9)) "grades" 1.0 (get "GRADES");
  Alcotest.(check (float 1e-9)) "department" 0.9 (get "DEPARTMENT");
  Alcotest.(check (float 1e-9)) "student best path" 0.9 (get "STUDENT");
  Alcotest.(check (float 1e-9)) "curriculum" 0.7 (get "CURRICULUM");
  Alcotest.(check (float 1e-9)) "people best path" 0.81 (get "PEOPLE")

let test_relevant_relations_threshold () =
  let all = Metric.relevant_relations Metric.default g ~pivot:"COURSES" in
  Alcotest.(check int) "all eight relevant at 0.5" 8 (List.length all);
  let strict = Metric.make ~threshold:0.95 () in
  Alcotest.(check (list string)) "only the island at 0.95"
    [ "COURSES"; "GRADES" ]
    (Metric.relevant_relations strict g ~pivot:"COURSES")

let test_custom_weights () =
  let w = { Metric.default_weights with Metric.inv_reference = 0.0 } in
  let m = Metric.make ~weights:w ~threshold:0.5 () in
  let rels = Metric.relevant_relations m g ~pivot:"COURSES" in
  (* CURRICULUM (inverse reference) and PEOPLE (reached through one)
     drop out; PEOPLE remains reachable via GRADES-STUDENT. *)
  Alcotest.(check bool) "curriculum dropped" false (List.mem "CURRICULUM" rels);
  Alcotest.(check bool) "people still reachable" true (List.mem "PEOPLE" rels)

let test_relevant_epsilon () =
  let m = Metric.make ~threshold:0.7 () in
  Alcotest.(check bool) "boundary counts as relevant" true (Metric.relevant m 0.7);
  Alcotest.(check bool) "below" false (Metric.relevant m 0.69)

let suite =
  [
    Alcotest.test_case "edge weights" `Quick test_edge_weights;
    Alcotest.test_case "path relevance" `Quick test_path_relevance;
    Alcotest.test_case "relevance map" `Quick test_relevance_map;
    Alcotest.test_case "threshold" `Quick test_relevant_relations_threshold;
    Alcotest.test_case "custom weights" `Quick test_custom_weights;
    Alcotest.test_case "epsilon boundary" `Quick test_relevant_epsilon;
  ]
