open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph

let test_relevant_subgraph () =
  let sub = Generate.relevant_subgraph Metric.default g ~pivot:"COURSES" in
  Alcotest.(check int) "all relations relevant" 8
    (List.length (Schema_graph.relations sub));
  let strict = Metric.make ~threshold:0.95 () in
  let sub' = Generate.relevant_subgraph strict g ~pivot:"COURSES" in
  Alcotest.(check (list string)) "only the entity core" [ "COURSES"; "GRADES" ]
    (Schema_graph.relations sub')

let test_full () =
  let vo = check_ok (Generate.full Metric.default g ~name:"full" ~pivot:"COURSES") in
  Alcotest.(check int) "complexity = tree size" 13 (Definition.complexity vo);
  (* every node projects all of its relation's attributes *)
  List.iter
    (fun (n : Definition.node) ->
      let schema = Schema_graph.schema_exn g n.Definition.relation in
      Alcotest.(check (list string))
        (Fmt.str "attrs of %s" n.Definition.label)
        (Schema.attribute_names schema)
        n.Definition.attrs)
    (Definition.nodes vo)

let test_prune_basic () =
  let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
  let vo =
    check_ok
      (Generate.prune g tree ~name:"mini"
         ~keep:[ "COURSES", []; "GRADES", [ "pid"; "grade" ] ])
  in
  Alcotest.(check int) "two nodes" 2 (Definition.complexity vo);
  (* [] means all attributes *)
  let root = Definition.find_exn vo "COURSES" in
  Alcotest.(check int) "all pivot attrs" 5 (List.length root.Definition.attrs)

let test_prune_reattaches () =
  let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
  let vo =
    check_ok
      (Generate.prune g tree ~name:"skip"
         ~keep:[ "COURSES", []; "STUDENT#2", [ "pid"; "degree_program" ] ])
  in
  let student = Definition.find_exn vo "STUDENT#2" in
  Alcotest.(check int) "path of two connections (Fig 3)" 2
    (List.length student.Definition.path);
  Alcotest.(check bool) "not direct" false (Definition.is_direct student)

let test_prune_root_key_added () =
  let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
  let vo =
    check_ok (Generate.prune g tree ~name:"auto-key" ~keep:[ "COURSES", [ "title" ] ])
  in
  let root = Definition.find_exn vo "COURSES" in
  Alcotest.(check (list string)) "key appended" [ "title"; "course_id" ]
    root.Definition.attrs

let test_prune_unknown_label () =
  let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
  check_err_contains ~sub:"not in the expansion tree"
    (Generate.prune g tree ~name:"x" ~keep:[ "COURSES", []; "GHOST", [] ])

let test_prune_invalid_projection () =
  let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
  (* GRADES without its accessible key complement *)
  check_err_contains ~sub:"cannot recover"
    (Generate.prune g tree ~name:"x"
       ~keep:[ "COURSES", []; "GRADES", [ "grade" ] ])

let test_prune_keeps_pivot_implicitly () =
  let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
  let vo = check_ok (Generate.prune g tree ~name:"only-root" ~keep:[]) in
  Alcotest.(check int) "pivot only" 1 (Definition.complexity vo)

let suite =
  [
    Alcotest.test_case "relevant subgraph (Fig 2a)" `Quick test_relevant_subgraph;
    Alcotest.test_case "full definition" `Quick test_full;
    Alcotest.test_case "prune basic" `Quick test_prune_basic;
    Alcotest.test_case "prune reattaches (Fig 3)" `Quick test_prune_reattaches;
    Alcotest.test_case "prune adds pivot key" `Quick test_prune_root_key_added;
    Alcotest.test_case "prune unknown label" `Quick test_prune_unknown_label;
    Alcotest.test_case "prune invalid projection" `Quick test_prune_invalid_projection;
    Alcotest.test_case "prune pivot implicit" `Quick test_prune_keeps_pivot_implicitly;
  ]
