open Structural
open Viewobject

let g = Penguin.University.graph
let omega = Penguin.University.omega

let test_omega_island () =
  Alcotest.(check (list string)) "island labels (Def 5.1)"
    [ "COURSES"; "GRADES" ]
    (Island.island_labels omega);
  Alcotest.(check (list string)) "island relations" [ "COURSES"; "GRADES" ]
    (Island.island_relations omega);
  Alcotest.(check bool) "pivot in island" true (Island.in_island omega "COURSES");
  Alcotest.(check bool) "student not in island" false
    (Island.in_island omega "STUDENT#2")

let test_omega_peninsulas () =
  match Island.peninsulas g omega with
  | [ (rel, conn) ] ->
      Alcotest.(check string) "curriculum is the peninsula (Def 5.2)"
        "CURRICULUM" rel;
      Alcotest.(check string) "reference into the island" "COURSES"
        conn.Connection.target
  | l -> Alcotest.failf "expected exactly one peninsula, got %d" (List.length l)

let test_omega_outside () =
  Alcotest.(check (list string)) "outside labels"
    [ "DEPARTMENT"; "STUDENT#2"; "CURRICULUM" ]
    (Island.outside_labels omega)

let test_hospital_island () =
  let pr = Penguin.Hospital.patient_record in
  Alcotest.(check (list string)) "deep island"
    [ "PATIENT"; "VISIT#2"; "ORDERS#2"; "RESULT#2" ]
    (Island.island_labels pr);
  (* APPOINTMENT references PATIENT but is not part of the object: still
     a peninsula? Def 5.2 requires R1 in d(omega) — it is not, so no
     peninsulas here. *)
  Alcotest.(check int) "no peninsulas" 0
    (List.length (Island.peninsulas Penguin.Hospital.graph pr))

let test_cad_island () =
  let ao = Penguin.Cad.assembly_object in
  Alcotest.(check (list string)) "two ownership branches"
    [ "ASSEMBLY"; "COMPONENT"; "DRAWING" ]
    (Island.island_labels ao);
  Alcotest.(check int) "no peninsulas" 0
    (List.length (Island.peninsulas Penguin.Cad.graph ao))

let test_island_stops_at_reference () =
  (* omega': STUDENT reached through an ownership+reference path is not
     in the island even though the path begins with ownership. *)
  let op = Penguin.University.omega_prime in
  Alcotest.(check (list string)) "pivot only" [ "COURSES" ]
    (Island.island_labels op)

let suite =
  [
    Alcotest.test_case "omega island" `Quick test_omega_island;
    Alcotest.test_case "omega peninsulas" `Quick test_omega_peninsulas;
    Alcotest.test_case "omega outside" `Quick test_omega_outside;
    Alcotest.test_case "hospital deep island" `Quick test_hospital_island;
    Alcotest.test_case "cad island" `Quick test_cad_island;
    Alcotest.test_case "island stops at reference" `Quick test_island_stops_at_reference;
  ]
