open Relational
open Test_util

let schema =
  Schema.make_exn ~name:"R"
    ~attributes:
      [ Attribute.int "id"; Attribute.str "grp"; Attribute.int "x" ]
    ~key:[ "id" ]

let seed n =
  Relation.of_list_exn schema
    (List.init n (fun i ->
         tuple
           [ "id", vi i; "grp", vs (Fmt.str "g%d" (i mod 5)); "x", vi (i * 10) ]))

let rel_err = Result.map_error Relation.error_to_string

let test_create_index () =
  let r = check_ok (rel_err (Relation.create_index (seed 20) [ "grp" ])) in
  Alcotest.(check bool) "has index" true (Relation.has_index r [ "grp" ]);
  Alcotest.(check bool) "order free" true (Relation.has_index r [ "grp" ]);
  Alcotest.(check int) "one index" 1 (List.length (Relation.indexes r));
  (* rebuilding replaces, not duplicates *)
  let r = check_ok (rel_err (Relation.create_index r [ "grp" ])) in
  Alcotest.(check int) "still one" 1 (List.length (Relation.indexes r))

let test_create_index_errors () =
  ignore (check_err (rel_err (Relation.create_index (seed 3) [])));
  ignore (check_err (rel_err (Relation.create_index (seed 3) [ "ghost" ])))

let test_lookup_eq_matches_scan () =
  let plain = seed 50 in
  let indexed = check_ok (rel_err (Relation.create_index plain [ "grp" ])) in
  let bindings = [ "grp", vs "g3" ] in
  Alcotest.(check (list tuple_testable)) "same result"
    (Relation.lookup_eq plain bindings)
    (Relation.lookup_eq indexed bindings);
  Alcotest.(check int) "ten hits" 10 (List.length (Relation.lookup_eq indexed bindings))

let test_lookup_eq_null_binding () =
  let indexed = check_ok (rel_err (Relation.create_index (seed 10) [ "grp" ])) in
  Alcotest.(check int) "null matches nothing" 0
    (List.length (Relation.lookup_eq indexed [ "grp", Value.Null ]))

let test_index_maintained_by_insert_delete () =
  let r = check_ok (rel_err (Relation.create_index (seed 10) [ "grp" ])) in
  let r = check_ok (rel_err (Relation.insert r (tuple [ "id", vi 100; "grp", vs "g3" ]))) in
  Alcotest.(check int) "insert indexed" 3
    (List.length (Relation.lookup_eq r [ "grp", vs "g3" ]));
  let r = check_ok (rel_err (Relation.delete_key r [ vi 3 ])) in
  Alcotest.(check int) "delete deindexed" 2
    (List.length (Relation.lookup_eq r [ "grp", vs "g3" ]))

let test_index_maintained_by_replace () =
  let r = check_ok (rel_err (Relation.create_index (seed 10) [ "grp" ])) in
  (* move tuple 3 from g3 to g0, changing its key too *)
  let r =
    check_ok
      (rel_err
         (Relation.replace r ~old_key:[ vi 3 ]
            (tuple [ "id", vi 300; "grp", vs "g0"; "x", vi 30 ])))
  in
  Alcotest.(check int) "g3 shrank" 1
    (List.length (Relation.lookup_eq r [ "grp", vs "g3" ]));
  Alcotest.(check int) "g0 grew" 3
    (List.length (Relation.lookup_eq r [ "grp", vs "g0" ]));
  Alcotest.(check bool) "new key reachable" true
    (List.exists
       (fun t -> Value.equal (Tuple.get t "id") (vi 300))
       (Relation.lookup_eq r [ "grp", vs "g0" ]))

let test_multi_attr_index () =
  let r = check_ok (rel_err (Relation.create_index (seed 30) [ "grp"; "x" ])) in
  let hits = Relation.lookup_eq r [ "grp", vs "g2"; "x", vi 70 ] in
  Alcotest.(check int) "one hit" 1 (List.length hits);
  Alcotest.check value_testable "right tuple" (vi 7)
    (Tuple.get (List.hd hits) "id")

let test_equal_ignores_indexes () =
  let plain = seed 5 in
  let indexed = check_ok (rel_err (Relation.create_index plain [ "grp" ])) in
  Alcotest.(check bool) "equal" true (Relation.equal plain indexed)

let test_database_create_index () =
  let db = Database.create_relation_exn Database.empty schema in
  let db = check_ok (Result.map_error Database.error_to_string (Database.create_index db "R" [ "grp" ])) in
  Alcotest.(check bool) "indexed through catalog" true
    (Relation.has_index (Database.relation_exn db "R") [ "grp" ]);
  match Database.create_index db "NOPE" [ "grp" ] with
  | Error (Database.Unknown_relation _) -> ()
  | _ -> Alcotest.fail "expected Unknown_relation"

let test_workspace_index_connections () =
  let ws = Penguin.University.workspace () in
  let ws = Penguin.Workspace.index_connections ws in
  Alcotest.(check bool) "grades indexed on course_id" true
    (Relation.has_index
       (Database.relation_exn ws.Penguin.Workspace.db "GRADES")
       [ "course_id" ]);
  (* results are identical with indexes on *)
  let i = Penguin.University.cs345_instance ws.Penguin.Workspace.db in
  let i' = Penguin.University.cs345_instance (Penguin.University.seeded_db ()) in
  Alcotest.(check bool) "same instance" true (Viewobject.Instance.equal i i');
  (* updates still work and stay consistent *)
  let ws', outcome =
    Penguin.Workspace.update ws "omega" (Vo_core.Request.delete i)
  in
  ignore (committed_db outcome);
  check_ok (Penguin.Workspace.check_consistency ws')

let prop_lookup_eq_index_equals_scan =
  QCheck.Test.make ~name:"indexed lookup_eq = scan" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_bound 40) (QCheck.int_bound 200)) (QCheck.int_bound 4))
    (fun (ids, probe) ->
      let ids = List.sort_uniq compare ids in
      let rows =
        List.map
          (fun i -> tuple [ "id", vi i; "grp", vs (Fmt.str "g%d" (i mod 5)) ])
          ids
      in
      let plain = Relation.of_list_exn schema rows in
      match Relation.create_index plain [ "grp" ] with
      | Error _ -> false
      | Ok indexed ->
          let b = [ "grp", vs (Fmt.str "g%d" probe) ] in
          List.equal Tuple.equal
            (Relation.lookup_eq plain b)
            (Relation.lookup_eq indexed b))

let suite =
  [
    Alcotest.test_case "create index" `Quick test_create_index;
    Alcotest.test_case "create index errors" `Quick test_create_index_errors;
    Alcotest.test_case "lookup_eq = scan" `Quick test_lookup_eq_matches_scan;
    Alcotest.test_case "null binding" `Quick test_lookup_eq_null_binding;
    Alcotest.test_case "insert/delete maintain" `Quick test_index_maintained_by_insert_delete;
    Alcotest.test_case "replace maintains" `Quick test_index_maintained_by_replace;
    Alcotest.test_case "multi-attribute index" `Quick test_multi_attr_index;
    Alcotest.test_case "equality ignores indexes" `Quick test_equal_ignores_indexes;
    Alcotest.test_case "database create_index" `Quick test_database_create_index;
    Alcotest.test_case "workspace index_connections" `Quick test_workspace_index_connections;
    qtest prop_lookup_eq_index_equals_scan;
  ]
