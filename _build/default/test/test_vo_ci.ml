open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()
let spec = Penguin.University.omega_translator

let student pid prog year =
  Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
    (tuple [ "pid", vi pid; "degree_program", vs prog; "year", vi year ])

let grade pid g students =
  Instance.make ~label:"GRADES" ~relation:"GRADES"
    ~tuple:(tuple [ "pid", vi pid; "grade", vs g ])
    ~children:[ "STUDENT#2", students ]

let dept name building =
  Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
    (tuple [ "dept_name", vs name; "building", vs building ])

let curriculum degree req =
  Instance.leaf ~label:"CURRICULUM" ~relation:"CURRICULUM"
    (tuple [ "degree", vs degree; "requirement", vs req ])

let course ?(id = "CS500") ?(dept_children = [ dept "Computer Science" "Gates" ])
    ?(grades = []) ?(currics = []) () =
  Instance.make ~label:"COURSES" ~relation:"COURSES"
    ~tuple:
      (tuple
         [ "course_id", vs id; "title", vs "Advanced DB"; "units", vi 3;
           "level", vs "grad" ])
    ~children:
      [ "DEPARTMENT", dept_children; "GRADES", grades; "CURRICULUM", currics ]

let translate ?(spec = spec) d i = Vo_core.Vo_ci.translate g d omega spec i

let test_simple_insert () =
  let d = db () in
  let i = course ~grades:[ grade 5 "A" [ student 5 "PhD CS" 2 ] ]
      ~currics:[ curriculum "PhD CS" "elective" ] () in
  let ops = check_ok (translate d i) in
  let count p = List.length (List.filter p ops) in
  Alcotest.(check int) "course insert" 1
    (count (fun o -> Op.is_insert o && Op.relation o = "COURSES"));
  Alcotest.(check int) "grade insert" 1
    (count (fun o -> Op.is_insert o && Op.relation o = "GRADES"));
  Alcotest.(check int) "curriculum insert" 1
    (count (fun o -> Op.is_insert o && Op.relation o = "CURRICULUM"));
  (* existing department and student reused: case 1 outside the island *)
  Alcotest.(check int) "no department op" 0
    (count (fun o -> Op.relation o = "DEPARTMENT"));
  Alcotest.(check int) "no student op" 0
    (count (fun o -> Op.relation o = "STUDENT"));
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_case1_island_reject () =
  let d = db () in
  (* Re-inserting CS345 as it stands: identical island tuple exists. *)
  let existing = Penguin.University.cs345_instance d in
  check_err_contains ~sub:"already exists" (translate d existing)

let test_case3_island_reject () =
  let d = db () in
  let i = course ~id:"CS345" () in
  (* CS345 exists with different title: case 3 in the island. *)
  check_err_contains ~sub:"same key" (translate d i)

let test_case2_new_department_inserted () =
  let d = db () in
  let i = course ~dept_children:[ dept "Robotics" "Lab7" ] () in
  let ops = check_ok (translate d i) in
  Alcotest.(check bool) "department inserted" true
    (List.exists
       (fun o -> Op.is_insert o && Op.relation o = "DEPARTMENT")
       ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_case2_outside_insert_denied () =
  let d = db () in
  let locked =
    Vo_core.Translator_spec.with_outside spec "DEPARTMENT"
      Vo_core.Translator_spec.forbid_modification
  in
  let i = course ~dept_children:[ dept "Robotics" "Lab7" ] () in
  check_err_contains ~sub:"not allowed" (translate ~spec:locked d i)

let test_case3_outside_replace () =
  let d = db () in
  (* Existing department, different building: case 3 outside -> replace. *)
  let i = course ~dept_children:[ dept "Computer Science" "NewGates" ] () in
  let ops = check_ok (translate d i) in
  Alcotest.(check bool) "replace emitted" true
    (List.exists
       (fun o -> Op.is_replace o && Op.relation o = "DEPARTMENT")
       ops);
  let d' = check_ok (Transaction.run_result d ops) in
  let dept_row =
    Option.get
      (Relation.lookup (Database.relation_exn d' "DEPARTMENT") [ vs "Computer Science" ])
  in
  Alcotest.check value_testable "building updated" (vs "NewGates")
    (Tuple.get dept_row "building");
  Alcotest.check value_testable "budget preserved" (vi 5000000)
    (Tuple.get dept_row "budget")

let test_case3_outside_replace_denied () =
  let d = db () in
  let locked =
    Vo_core.Translator_spec.with_outside spec "DEPARTMENT"
      { Vo_core.Translator_spec.modifiable = true; allow_insert = true;
        allow_modify = false }
  in
  let i = course ~dept_children:[ dept "Computer Science" "NewGates" ] () in
  check_err_contains ~sub:"not allowed" (translate ~spec:locked d i)

let test_insertion_not_allowed () =
  let d = db () in
  let locked = { spec with Vo_core.Translator_spec.allow_insertion = false } in
  check_err_contains ~sub:"does not allow" (translate ~spec:locked d (course ()))

let test_dependency_stub_insertion () =
  let d = db () in
  (* New grade references a brand-new student (pid 42) that is not a node
     value in the database: global validation inserts stubs recursively
     (STUDENT, then its PEOPLE parent). *)
  let i =
    course
      ~grades:[ grade 42 "A" [ student 42 "MS Robotics" 1 ] ]
      ()
  in
  let ops = check_ok (translate d i) in
  Alcotest.(check bool) "student inserted" true
    (List.exists (fun o -> Op.is_insert o && Op.relation o = "STUDENT") ops);
  Alcotest.(check bool) "people stub inserted" true
    (List.exists (fun o -> Op.is_insert o && Op.relation o = "PEOPLE") ops);
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_dependency_stub_denied () =
  let d = db () in
  let locked =
    {
      (Vo_core.Translator_spec.with_outside spec "STUDENT"
         { Vo_core.Translator_spec.modifiable = true; allow_insert = true;
           allow_modify = true })
      with
      Vo_core.Translator_spec.default_outside =
        Vo_core.Translator_spec.forbid_modification;
    }
  in
  (* PEOPLE stub required but the default-outside policy forbids it. *)
  let i = course ~grades:[ grade 42 "A" [ student 42 "MS Robotics" 1 ] ] () in
  check_err_contains ~sub:"PEOPLE" (translate ~spec:locked d i)

let test_nonconforming_instance () =
  let d = db () in
  let bad = { (course ()) with Instance.label = "WRONG" } in
  check_err_contains ~sub:"does not match" (translate d bad)

let test_null_padding () =
  let d = db () in
  let ops = check_ok (translate d (course ())) in
  let d' = check_ok (Transaction.run_result d ops) in
  let row =
    Option.get (Relation.lookup (Database.relation_exn d' "COURSES") [ vs "CS500" ])
  in
  (* dept_name is recovered from the DEPARTMENT child, not null *)
  Alcotest.check value_testable "dept_name recovered" (vs "Computer Science")
    (Tuple.get row "dept_name")

let suite =
  [
    Alcotest.test_case "simple insert (case 2)" `Quick test_simple_insert;
    Alcotest.test_case "case 1 island rejects" `Quick test_case1_island_reject;
    Alcotest.test_case "case 3 island rejects" `Quick test_case3_island_reject;
    Alcotest.test_case "case 2 new department" `Quick test_case2_new_department_inserted;
    Alcotest.test_case "case 2 denied outside" `Quick test_case2_outside_insert_denied;
    Alcotest.test_case "case 3 outside replaces" `Quick test_case3_outside_replace;
    Alcotest.test_case "case 3 denied outside" `Quick test_case3_outside_replace_denied;
    Alcotest.test_case "insertion not allowed" `Quick test_insertion_not_allowed;
    Alcotest.test_case "dependency stubs" `Quick test_dependency_stub_insertion;
    Alcotest.test_case "dependency stub denied" `Quick test_dependency_stub_denied;
    Alcotest.test_case "nonconforming instance" `Quick test_nonconforming_instance;
    Alcotest.test_case "null padding & linkage" `Quick test_null_padding;
  ]
