open Relational
open Test_util

let schema_r =
  Schema.make_exn ~name:"R"
    ~attributes:[ Attribute.int "id"; Attribute.str "v" ]
    ~key:[ "id" ]

let db0 =
  let db = Database.create_relation_exn Database.empty schema_r in
  check_ok
    (Result.map_error Database.error_to_string
       (Database.insert db "R" (tuple [ "id", vi 1; "v", vs "a" ])))

let test_create_drop () =
  (match Database.create_relation db0 schema_r with
  | Error (Database.Relation_exists "R") -> ()
  | _ -> Alcotest.fail "expected Relation_exists");
  let db = check_ok (Result.map_error Database.error_to_string (Database.drop_relation db0 "R")) in
  Alcotest.(check bool) "dropped" false (Database.mem_relation db "R");
  match Database.drop_relation db "R" with
  | Error (Database.Unknown_relation _) -> ()
  | _ -> Alcotest.fail "expected Unknown_relation"

let test_relation_access () =
  Alcotest.(check (list string)) "names" [ "R" ] (Database.relation_names db0);
  Alcotest.(check int) "total" 1 (Database.total_tuples db0);
  (match Database.relation db0 "X" with
  | Error (Database.Unknown_relation "X") -> ()
  | _ -> Alcotest.fail "expected Unknown_relation");
  let s = check_ok (Result.map_error Database.error_to_string (Database.schema_of db0 "R")) in
  Alcotest.(check string) "schema name" "R" s.Schema.name

let test_ops () =
  let db =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.apply db0 (Op.Insert ("R", tuple [ "id", vi 2; "v", vs "b" ]))))
  in
  let db =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.apply db (Op.Replace ("R", [ vi 2 ], tuple [ "id", vi 2; "v", vs "B" ]))))
  in
  let db =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.apply db (Op.Delete ("R", [ vi 1 ]))))
  in
  Alcotest.(check int) "one row" 1 (Database.total_tuples db);
  Alcotest.check value_testable "replaced" (vs "B")
    (Tuple.get (Option.get (Relation.lookup (Database.relation_exn db "R") [ vi 2 ])) "v")

let test_apply_all_failure_reports_op () =
  let ops =
    [ Op.Insert ("R", tuple [ "id", vi 2 ]); Op.Insert ("R", tuple [ "id", vi 2 ]) ]
  in
  match Database.apply_all db0 ops with
  | Error (_, op) ->
      Alcotest.check op_testable "offending op" (List.nth ops 1) op
  | Ok _ -> Alcotest.fail "expected failure"

let test_persistence () =
  let _db' =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.insert db0 "R" (tuple [ "id", vi 99 ])))
  in
  (* db0 unchanged *)
  Alcotest.(check int) "original intact" 1 (Database.total_tuples db0)

let test_transaction_commit () =
  match
    Transaction.run db0
      [ Op.Insert ("R", tuple [ "id", vi 5 ]); Op.Insert ("R", tuple [ "id", vi 6 ]) ]
  with
  | Transaction.Committed db -> Alcotest.(check int) "3 rows" 3 (Database.total_tuples db)
  | Transaction.Rolled_back _ -> Alcotest.fail "expected commit"

let test_transaction_rollback_atomic () =
  match
    Transaction.run db0
      [ Op.Insert ("R", tuple [ "id", vi 5 ]); Op.Insert ("R", tuple [ "id", vi 1 ]) ]
  with
  | Transaction.Rolled_back { failed_op = Some op; _ } ->
      Alcotest.(check string) "failed op rel" "R" (Op.relation op);
      (* nothing leaked: db0 still has one tuple *)
      Alcotest.(check int) "atomic" 1 (Database.total_tuples db0)
  | _ -> Alcotest.fail "expected rollback"

let test_reject () =
  match Transaction.reject "policy says no" with
  | Transaction.Rolled_back { reason; failed_op = None } ->
      Alcotest.(check string) "reason" "policy says no" reason
  | _ -> Alcotest.fail "expected rollback"

let test_run_result () =
  (match Transaction.run_result db0 [] with
  | Ok db -> Alcotest.(check int) "no-op txn" 1 (Database.total_tuples db)
  | Error _ -> Alcotest.fail "no-op should commit");
  match Transaction.run_result db0 [ Op.Delete ("R", [ vi 42 ]) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let suite =
  [
    Alcotest.test_case "create/drop" `Quick test_create_drop;
    Alcotest.test_case "relation access" `Quick test_relation_access;
    Alcotest.test_case "op application" `Quick test_ops;
    Alcotest.test_case "apply_all failure" `Quick test_apply_all_failure_reports_op;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "transaction commit" `Quick test_transaction_commit;
    Alcotest.test_case "transaction rollback atomic" `Quick test_transaction_rollback_atomic;
    Alcotest.test_case "reject" `Quick test_reject;
    Alcotest.test_case "run_result" `Quick test_run_result;
  ]
