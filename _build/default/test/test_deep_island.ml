(* Key replacements deep inside multi-level dependency islands: renaming
   a VISIT re-keys its ORDERS, which re-keys their RESULTs — the Aj
   complements propagate down the whole ownership chain (Section 5.3's
   "a change to Aj has to be propagated down to Rj's children in the
   dependency island"). *)
open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.Hospital.graph
let pr = Penguin.Hospital.patient_record
let spec = Penguin.Hospital.record_translator
let db () = Penguin.Hospital.seeded_db ()
let record d mrn = Penguin.Hospital.patient_instance d mrn

let test_rename_visit_rekeys_subtree () =
  let d = db () in
  let old_i = record d 7001 in
  let new_i =
    check_ok
      (Vo_core.Request.modify_component old_i ~label:Penguin.Hospital.visit_label
         ~at:(tuple [ "visit_no", vi 1 ])
         ~f:(fun t -> Tuple.set t "visit_no" (vi 9)))
  in
  let ops =
    check_ok
      (Vo_core.Vo_r.translate g d pr spec ~old_instance:old_i ~new_instance:new_i)
  in
  let replaces rel =
    List.filter (fun o -> Op.is_replace o && Op.relation o = rel) ops
  in
  Alcotest.(check int) "visit re-keyed" 1 (List.length (replaces "VISIT"));
  Alcotest.(check int) "orders re-keyed" 2 (List.length (replaces "ORDERS"));
  Alcotest.(check int) "results re-keyed" 2 (List.length (replaces "RESULT"));
  (match replaces "RESULT" with
  | Op.Replace (_, [ mrn; old_visit; _; _ ], t) :: _ ->
      Alcotest.check value_testable "old key visit 1" (vi 1) old_visit;
      Alcotest.check value_testable "same patient" (vi 7001) mrn;
      Alcotest.check value_testable "new inherited visit" (vi 9)
        (Tuple.get t "visit_no")
  | _ -> Alcotest.fail "no result replace");
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'));
  (* untouched visit 2 chain survives under its old key *)
  Alcotest.(check bool) "visit 2 untouched" true
    (Relation.mem_key (Database.relation_exn d' "ORDERS") [ vi 7001; vi 2; vi 1 ])

let test_rename_patient_rekeys_everything () =
  let d = db () in
  let old_i = record d 7001 in
  let new_i =
    Instance.with_tuple old_i (Tuple.set old_i.Instance.tuple "mrn" (vi 8888))
  in
  let outcome =
    Vo_core.Engine.apply g d pr spec (Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i)
  in
  let d' = committed_db outcome in
  Alcotest.(check int) "no tuples lost"
    (Database.total_tuples d) (Database.total_tuples d');
  Alcotest.(check int) "all visits moved" 2
    (List.length
       (Relation.lookup_eq (Database.relation_exn d' "VISIT") [ "mrn", vi 8888 ]));
  Alcotest.(check int) "all orders moved" 3
    (List.length
       (Relation.lookup_eq (Database.relation_exn d' "ORDERS") [ "mrn", vi 8888 ]));
  Alcotest.(check int) "all results moved" 2
    (List.length
       (Relation.lookup_eq (Database.relation_exn d' "RESULT") [ "mrn", vi 8888 ]));
  (* the appointments referencing the old mrn were rewritten by the
     structural fix-ups (nonkey reference) *)
  Alcotest.(check int) "appointments follow" 2
    (List.length
       (Relation.lookup_eq
          (Database.relation_exn d' "APPOINTMENT")
          [ "mrn", vi 8888 ]));
  check_ok (Vo_core.Global_validation.check_consistency g d')

let test_rename_denied_when_key_locked () =
  let d = db () in
  let locked =
    Vo_core.Translator_spec.with_island_key spec "VISIT"
      Vo_core.Translator_spec.forbid_key_changes
  in
  let old_i = record d 7001 in
  let new_i =
    check_ok
      (Vo_core.Request.modify_component old_i ~label:Penguin.Hospital.visit_label
         ~at:(tuple [ "visit_no", vi 1 ])
         ~f:(fun t -> Tuple.set t "visit_no" (vi 9)))
  in
  check_err_contains ~sub:"may not be modified"
    (Vo_core.Vo_r.translate g d pr locked ~old_instance:old_i ~new_instance:new_i)

let test_cad_component_part_swap () =
  (* island nonkey change referencing catalog data: R-2 on COMPONENT,
     nothing on PART *)
  let cg = Penguin.Cad.graph in
  let cd = Penguin.Cad.seeded_db () in
  let a1 = Penguin.Cad.assembly_instance cd "A1" in
  let new_i =
    check_ok
      (Vo_core.Request.modify_component a1 ~label:"COMPONENT"
         ~at:(tuple [ "comp_no", vi 2 ])
         ~f:(fun t -> Tuple.set t "part_no" (vs "PN-300")))
  in
  (* the stale PART child under component 2 still says PN-200; the walk
     trusts the parent's reference and the downward propagation rewrites
     the child's inherited key *)
  let ops =
    check_ok
      (Vo_core.Vo_r.translate cg cd Penguin.Cad.assembly_object
         Penguin.Cad.assembly_translator ~old_instance:a1 ~new_instance:new_i)
  in
  Alcotest.(check bool) "component rewired" true
    (List.exists
       (fun o ->
         match o with
         | Op.Replace ("COMPONENT", [ _; c ], t) ->
             Value.equal c (vi 2)
             && Value.equal (Tuple.get t "part_no") (vs "PN-300")
         | _ -> false)
       ops);
  let cd' = check_ok (Transaction.run_result cd ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check cg cd'))

let suite =
  [
    Alcotest.test_case "rename visit re-keys subtree" `Quick
      test_rename_visit_rekeys_subtree;
    Alcotest.test_case "rename patient re-keys everything" `Quick
      test_rename_patient_rekeys_everything;
    Alcotest.test_case "key lock deep in the island" `Quick
      test_rename_denied_when_key_locked;
    Alcotest.test_case "cad component part swap" `Quick
      test_cad_component_part_swap;
  ]
