open Relational
open Viewobject
open Test_util

let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()

let run q = check_ok (Oql.run (db ()) omega q)

let course_ids is =
  List.sort String.compare
    (List.map
       (fun (i : Instance.t) ->
         Fmt.str "%a" Value.pp_plain (Tuple.get i.Instance.tuple "course_id"))
       is)

let test_empty_query () =
  Alcotest.(check int) "empty = all" 4 (List.length (run ""));
  Alcotest.(check int) "true = all" 4 (List.length (run "true"))

let test_figure4 () =
  Alcotest.(check (list string)) "figure 4 in OQL" [ "CS345" ]
    (course_ids (run "level = 'grad' and count(STUDENT#2) < 5"))

let test_qualified_and_bare () =
  Alcotest.(check (list string)) "qualified pivot attr" [ "CS345"; "EE280" ]
    (course_ids (run "COURSES.level = 'grad'"));
  Alcotest.(check (list string)) "bare unique attr" [ "CS345"; "EE280" ]
    (course_ids (run "level = 'grad'"));
  (* 'pid' is projected by GRADES and STUDENT#2: ambiguous *)
  check_err_contains ~sub:"ambiguous" (Oql.parse omega "pid = 1")

let test_child_attr () =
  Alcotest.(check (list string)) "existential child predicate"
    [ "CS345"; "EE280" ]
    (course_ids (run "STUDENT#2.degree_program = 'PhD CS'"))

let test_node_block_semantics () =
  (* Separate conditions are satisfied by two different grade tuples... *)
  Alcotest.(check (list string)) "separate existentials"
    [ "CS101"; "CS345"; "EE280" ]
    (course_ids (run "GRADES.grade = 'A' and GRADES.pid = 1"));
  (* ... while a node block requires one tuple satisfying both: only
     CS345's pid-1 grade is an A. *)
  Alcotest.(check (list string)) "block on one tuple" [ "CS345" ]
    (course_ids (run "GRADES[grade = 'A' and pid = 1]"));
  Alcotest.(check int) "no single tuple has A and pid 2" 0
    (List.length (run "GRADES[grade = 'A' and pid = 2]"));
  (* but the separate existentials accept two witnesses *)
  Alcotest.(check (list string)) "two tuples" [ "CS345"; "EE280" ]
    (course_ids (run "GRADES.grade = 'A' and GRADES.pid = 2"))

let test_count_forms () =
  Alcotest.(check (list string)) "count eq" [ "CS345" ]
    (course_ids (run "count(CURRICULUM) = 2"));
  Alcotest.(check int) "every course is in some curriculum" 0
    (List.length (run "count(CURRICULUM) = 0"));
  Alcotest.(check (list string)) "count over nested nodes" [ "EE280" ]
    (course_ids (run "count(STUDENT#2) >= 5"))

let test_connectives_parens () =
  Alcotest.(check (list string)) "or" [ "CS101"; "MATH51" ]
    (course_ids (run "course_id = 'CS101' or course_id = 'MATH51'"));
  Alcotest.(check (list string)) "not" [ "CS101"; "MATH51" ]
    (course_ids (run "not level = 'grad'"));
  Alcotest.(check (list string)) "parens change grouping" [ "CS345" ]
    (course_ids
       (run "(level = 'grad' or level = 'undergrad') and count(GRADES) = 2"))

let test_is_null () =
  (* building is projected on DEPARTMENT and never null in the seed *)
  Alcotest.(check int) "none null" 0
    (List.length (run "DEPARTMENT.building is null"));
  Alcotest.(check int) "all not null" 4
    (List.length (run "DEPARTMENT.building is not null" ))

let test_numeric_comparisons () =
  Alcotest.(check (list string)) "units >= 4" [ "CS101"; "MATH51" ]
    (course_ids (run "units >= 4"));
  Alcotest.(check (list string)) "year < 2 somewhere" [ "CS101"; "EE280" ]
    (course_ids (run "STUDENT#2.year < 2"))

let test_node_block_arithmetic () =
  (* node blocks accept the full SQL condition grammar, arithmetic
     included *)
  Alcotest.(check (list string)) "arithmetic" [ "CS345" ]
    (course_ids (run "GRADES[pid * 2 = 2 and grade = 'A']"));
  Alcotest.(check (list string)) "is-null inside block" [ ]
    (course_ids (run "GRADES[grade is null]"));
  Alcotest.(check (list string)) "or inside block"
    [ "CS101"; "CS345"; "EE280"; "MATH51" ]
    (course_ids (run "GRADES[pid = 1 or pid = 3 or pid = 5]"))

let test_errors () =
  check_err_contains ~sub:"no node" (Oql.parse omega "GHOST.x = 1");
  check_err_contains ~sub:"does not project"
    (Oql.parse omega "COURSES.dept_name = 'CS'");
  check_err_contains ~sub:"no node of the object"
    (Oql.parse omega "frobnicate = 1");
  check_err_contains ~sub:"parse error" (Oql.parse omega "level =");
  check_err_contains ~sub:"end of query" (Oql.parse omega "level = 'grad' level");
  check_err_contains ~sub:"integer" (Oql.parse omega "count(GRADES) < 'x'");
  check_err_contains ~sub:"does not project"
    (Oql.parse omega "GRADES[title = 'x']")

let test_on_other_objects () =
  (* patient records: deep nesting *)
  let hdb = Penguin.Hospital.seeded_db () in
  let busy =
    check_ok
      (Oql.run hdb Penguin.Hospital.patient_record
         (Fmt.str "count(%s) > 1" Penguin.Hospital.visit_label))
  in
  Alcotest.(check int) "one busy patient" 1 (List.length busy);
  let drugs =
    check_ok
      (Oql.run hdb Penguin.Hospital.patient_record
         (Fmt.str "%s.drug = 'atenolol'" Penguin.Hospital.orders_label))
  in
  Alcotest.(check int) "atenolol patient" 1 (List.length drugs)

let suite =
  [
    Alcotest.test_case "empty/true" `Quick test_empty_query;
    Alcotest.test_case "figure 4 query" `Quick test_figure4;
    Alcotest.test_case "qualified & bare refs" `Quick test_qualified_and_bare;
    Alcotest.test_case "child attribute" `Quick test_child_attr;
    Alcotest.test_case "node block semantics" `Quick test_node_block_semantics;
    Alcotest.test_case "count forms" `Quick test_count_forms;
    Alcotest.test_case "connectives & parens" `Quick test_connectives_parens;
    Alcotest.test_case "is null" `Quick test_is_null;
    Alcotest.test_case "numeric comparisons" `Quick test_numeric_comparisons;
    Alcotest.test_case "node block arithmetic" `Quick test_node_block_arithmetic;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "other objects" `Quick test_on_other_objects;
  ]
