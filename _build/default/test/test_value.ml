open Relational
open Test_util

let test_compare_ranks () =
  Alcotest.(check bool) "null < bool" true (Value.compare Value.Null (vb false) < 0);
  Alcotest.(check bool) "bool < int" true (Value.compare (vb true) (vi 0) < 0);
  Alcotest.(check bool) "int < float" true (Value.compare (vi 99) (vf 0.0) < 0);
  Alcotest.(check bool) "float < str" true (Value.compare (vf 9e9) (vs "") < 0)

let test_compare_within () =
  Alcotest.(check int) "ints" (-1) (compare (Value.compare (vi 1) (vi 2)) 0);
  Alcotest.(check int) "strings" 1 (compare (Value.compare (vs "b") (vs "a")) 0);
  Alcotest.(check int) "equal" 0 (Value.compare (vf 1.5) (vf 1.5))

let test_equal () =
  Alcotest.(check bool) "int eq" true (Value.equal (vi 7) (vi 7));
  Alcotest.(check bool) "null eq" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "cross neq" false (Value.equal (vi 1) (vf 1.0))

let test_is_null () =
  Alcotest.(check bool) "null" true (Value.is_null Value.Null);
  Alcotest.(check bool) "zero" false (Value.is_null (vi 0))

let test_domains () =
  Alcotest.(check (option string))
    "int domain" (Some "int")
    (Option.map Value.domain_name (Value.domain_of (vi 3)));
  Alcotest.(check (option string)) "null has no domain" None
    (Option.map Value.domain_name (Value.domain_of Value.Null));
  Alcotest.(check bool) "null conforms anywhere" true
    (Value.conforms Value.DStr Value.Null);
  Alcotest.(check bool) "int conforms DInt" true (Value.conforms Value.DInt (vi 1));
  Alcotest.(check bool) "int does not conform DStr" false
    (Value.conforms Value.DStr (vi 1))

let test_domain_names () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check (option string))
        s expected
        (Option.map Value.domain_name (Value.domain_of_name s)))
    [
      "int", Some "int"; "INTEGER", Some "int"; "float", Some "float";
      "REAL", Some "float"; "string", Some "string"; "varchar", Some "string";
      "bool", Some "bool"; "frobnicate", None;
    ]

let test_parse () =
  Alcotest.check value_testable "parse int" (vi 42)
    (check_ok (Value.parse Value.DInt "42"));
  Alcotest.check value_testable "parse negative" (vi (-3))
    (check_ok (Value.parse Value.DInt " -3 "));
  Alcotest.check value_testable "parse float" (vf 2.5)
    (check_ok (Value.parse Value.DFloat "2.5"));
  Alcotest.check value_testable "parse bool" (vb true)
    (check_ok (Value.parse Value.DBool "TRUE"));
  Alcotest.check value_testable "parse string unquoted" (vs "abc")
    (check_ok (Value.parse Value.DStr "abc"));
  Alcotest.check value_testable "parse string quoted" (vs "a,b")
    (check_ok (Value.parse Value.DStr "\"a,b\""));
  Alcotest.check value_testable "null in any domain" Value.Null
    (check_ok (Value.parse Value.DInt "null"));
  ignore (check_err (Value.parse Value.DInt "twelve"));
  ignore (check_err (Value.parse Value.DBool "maybe"))

let test_pp () =
  Alcotest.(check string) "pp str quoted" "\"x\"" (Value.to_string (vs "x"));
  Alcotest.(check string) "pp null" "null" (Value.to_string Value.Null);
  Alcotest.(check string) "pp plain str" "x" (Fmt.str "%a" Value.pp_plain (vs "x"))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1e6);
        map (fun s -> Value.Str s) (string_size (int_bound 8));
        map (fun b -> Value.Bool b) bool;
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare reflexive" ~count:200 value_arb (fun v ->
      Value.compare v v = 0)

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> compare (Value.compare a b) 0 = - (compare (Value.compare b a) 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"compare transitive" ~count:500
    (QCheck.triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      (* sorting with a transitive comparator is stable wrt re-sorting *)
      List.equal Value.equal sorted (List.sort Value.compare sorted))

let prop_int_parse_roundtrip =
  QCheck.Test.make ~name:"int parse/print roundtrip" ~count:200 QCheck.int
    (fun i ->
      match Value.parse Value.DInt (Value.to_string (Value.Int i)) with
      | Ok v -> Value.equal v (Value.Int i)
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "compare ranks" `Quick test_compare_ranks;
    Alcotest.test_case "compare within constructors" `Quick test_compare_within;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "is_null" `Quick test_is_null;
    Alcotest.test_case "domains" `Quick test_domains;
    Alcotest.test_case "domain names" `Quick test_domain_names;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "pp" `Quick test_pp;
    qtest prop_compare_reflexive;
    qtest prop_compare_antisymmetric;
    qtest prop_compare_transitive;
    qtest prop_int_parse_roundtrip;
  ]
