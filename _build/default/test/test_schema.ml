open Relational
open Test_util

let attrs = [ Attribute.int "a"; Attribute.str "b"; Attribute.float "c" ]

let test_make_ok () =
  let s = check_ok (Schema.make ~name:"R" ~attributes:attrs ~key:[ "a" ]) in
  Alcotest.(check (list string)) "attrs" [ "a"; "b"; "c" ] (Schema.attribute_names s);
  Alcotest.(check (list string)) "key" [ "a" ] (Schema.key_attributes s);
  Alcotest.(check (list string)) "nonkey" [ "b"; "c" ] (Schema.nonkey_attributes s);
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check bool) "is_key_attr" true (Schema.is_key_attr s "a");
  Alcotest.(check bool) "not key" false (Schema.is_key_attr s "b")

let test_make_errors () =
  check_err_contains ~sub:"empty relation name"
    (Schema.make ~name:"" ~attributes:attrs ~key:[ "a" ]);
  check_err_contains ~sub:"no attributes"
    (Schema.make ~name:"R" ~attributes:[] ~key:[ "a" ]);
  check_err_contains ~sub:"duplicate attribute"
    (Schema.make ~name:"R"
       ~attributes:[ Attribute.int "a"; Attribute.str "a" ]
       ~key:[ "a" ]);
  check_err_contains ~sub:"empty key"
    (Schema.make ~name:"R" ~attributes:attrs ~key:[]);
  check_err_contains ~sub:"not declared"
    (Schema.make ~name:"R" ~attributes:attrs ~key:[ "zz" ]);
  check_err_contains ~sub:"duplicate key"
    (Schema.make ~name:"R" ~attributes:attrs ~key:[ "a"; "a" ])

let test_find_domain () =
  let s = Schema.make_exn ~name:"R" ~attributes:attrs ~key:[ "a" ] in
  Alcotest.(check bool) "mem" true (Schema.mem s "b");
  Alcotest.(check bool) "not mem" false (Schema.mem s "zz");
  Alcotest.(check (option string))
    "domain" (Some "float")
    (Option.map Value.domain_name (Schema.domain_of s "c"));
  Alcotest.(check (option string)) "missing" None
    (Option.map Value.domain_name (Schema.domain_of s "zz"))

let test_project_keeps_key () =
  let s = Schema.make_exn ~name:"R" ~attributes:attrs ~key:[ "a" ] in
  let p = check_ok (Schema.project s [ "a"; "c" ]) in
  Alcotest.(check (list string)) "key kept" [ "a" ] (Schema.key_attributes p);
  Alcotest.(check (list string)) "attrs" [ "a"; "c" ] (Schema.attribute_names p)

let test_project_drops_key () =
  let s = Schema.make_exn ~name:"R" ~attributes:attrs ~key:[ "a" ] in
  let p = check_ok (Schema.project s [ "b"; "c" ]) in
  Alcotest.(check (list string))
    "all kept attrs become the key" [ "b"; "c" ] (Schema.key_attributes p)

let test_project_unknown () =
  let s = Schema.make_exn ~name:"R" ~attributes:attrs ~key:[ "a" ] in
  check_err_contains ~sub:"unknown attribute" (Schema.project s [ "zz" ])

let test_rename_equal () =
  let s = Schema.make_exn ~name:"R" ~attributes:attrs ~key:[ "a" ] in
  let r = Schema.rename s "S" in
  Alcotest.(check string) "renamed" "S" r.Schema.name;
  Alcotest.(check bool) "not equal after rename" false (Schema.equal s r);
  Alcotest.(check bool) "self equal" true (Schema.equal s s)

let suite =
  [
    Alcotest.test_case "make ok" `Quick test_make_ok;
    Alcotest.test_case "make errors" `Quick test_make_errors;
    Alcotest.test_case "find/domain" `Quick test_find_domain;
    Alcotest.test_case "project keeps key" `Quick test_project_keeps_key;
    Alcotest.test_case "project drops key" `Quick test_project_drops_key;
    Alcotest.test_case "project unknown" `Quick test_project_unknown;
    Alcotest.test_case "rename/equal" `Quick test_rename_equal;
  ]
