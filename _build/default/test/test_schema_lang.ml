open Structural
open Test_util

let library_script =
  {|
  relation AUTHOR (author_id string, name string) key (author_id);
  relation BOOK (isbn string, title string, author_id string, year int)
    key (isbn);
  relation COPY (isbn string, copy_no int, shelf string) key (isbn, copy_no);

  reference BOOK AUTHOR on (author_id ; author_id);
  ownership BOOK COPY on (isbn ; isbn);
  |}

let test_parse_basic () =
  let g = check_ok (Schema_lang.parse library_script) in
  Alcotest.(check (list string)) "relations" [ "AUTHOR"; "BOOK"; "COPY" ]
    (Schema_graph.relations g);
  Alcotest.(check int) "connections" 2 (List.length (Schema_graph.connections g));
  let copy = Schema_graph.schema_exn g "COPY" in
  Alcotest.(check (list string)) "composite key" [ "isbn"; "copy_no" ]
    (Relational.Schema.key_attributes copy)

let test_render_roundtrip () =
  let g = check_ok (Schema_lang.parse library_script) in
  let g2 = check_ok (Schema_lang.parse (Schema_lang.render g)) in
  Alcotest.(check (list string)) "relations stable"
    (Schema_graph.relations g) (Schema_graph.relations g2);
  Alcotest.(check int) "connections stable"
    (List.length (Schema_graph.connections g))
    (List.length (Schema_graph.connections g2))

let test_university_roundtrip () =
  (* the Figure-1 schema survives render/parse *)
  let g = Penguin.University.graph in
  let g2 = check_ok (Schema_lang.parse (Schema_lang.render g)) in
  Alcotest.(check (list string)) "relations"
    (Schema_graph.relations g) (Schema_graph.relations g2);
  let ids graph =
    List.sort String.compare
      (List.map Connection.id (Schema_graph.connections graph))
  in
  Alcotest.(check (list string)) "connection ids" (ids g) (ids g2)

let test_generation_from_script () =
  (* a script-defined schema drives the full pipeline *)
  let g = check_ok (Schema_lang.parse library_script) in
  let vo =
    check_ok (Viewobject.Generate.full Metric.default g ~name:"book" ~pivot:"BOOK")
  in
  Alcotest.(check (list string)) "island"
    [ "BOOK"; "COPY" ]
    (Viewobject.Island.island_relations vo)

let test_parse_errors () =
  check_err_contains ~sub:"unknown domain"
    (Schema_lang.parse "relation R (a frobnicate) key (a);");
  check_err_contains ~sub:"expected on"
    (Schema_lang.parse
       "relation A (x int) key (x); relation B (x int, y int) key (x, y); \
        ownership A B (x ; x);");
  check_err_contains ~sub:"relation, ownership"
    (Schema_lang.parse "frobnicate A B;");
  (* structural rules are enforced: reference X2 must be the whole key *)
  check_err_contains ~sub:"X2 must equal K"
    (Schema_lang.parse
       "relation A (x int, z int) key (x); relation B (x int, y int) key (x, y); \
        reference A B on (z ; x);");
  (* unknown relation in a connection *)
  check_err_contains ~sub:"unknown source"
    (Schema_lang.parse "relation A (x int) key (x); ownership GHOST A on (x ; x);")

let test_missing_semicolon () =
  check_err_contains ~sub:"expected ;"
    (Schema_lang.parse "relation A (x int) key (x)")

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
    Alcotest.test_case "university roundtrip" `Quick test_university_roundtrip;
    Alcotest.test_case "generation from script" `Quick test_generation_from_script;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "missing semicolon" `Quick test_missing_semicolon;
  ]
