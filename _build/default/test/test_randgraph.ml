(* Property tests over randomly generated structural schemas: the
   generation pipeline (metric -> expansion -> full definition) and the
   island/peninsula analysis must hold their invariants on arbitrary
   valid schemas, not just the fixtures. *)
open Relational
open Structural
open Viewobject
open Test_util

(* Random structural schemas, valid by construction. Relation 0 is the
   root; each later relation attaches to an earlier one by a random
   connection kind, with schemas shaped to satisfy Defs. 2.2-2.4:
   - ownership p -> i : K(R_i) = K(R_p) + own id
   - reference i -> p : R_i gains nonkey fk attributes matching K(R_p)
   - subset    p -> i : K(R_i) = K(R_p)
   Extra cross references are added between random pairs. *)

type plan = {
  n : int;
  attach : (int * int) list;  (** (parent, kind 0=own 1=ref 2=subset) per i>0 *)
  extra_refs : (int * int) list;  (** (from, to) *)
}

let plan_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* attach =
      flatten_l
        (List.init (n - 1) (fun i ->
             let i = i + 1 in
             let* parent = int_bound (i - 1) in
             let* kind = int_bound 2 in
             return (parent, kind)))
    in
    let* n_extra = int_bound 2 in
    let* extra_refs =
      flatten_l
        (List.init n_extra (fun _ ->
             let* a = int_bound (n - 1) in
             let* b = int_bound (n - 1) in
             return (a, b)))
    in
    return { n; attach; extra_refs })

(* Build the schema set and connections for a plan. Keys are tracked as
   attribute-name lists; attribute names are globally unique per
   relation. *)
let build plan =
  let keys = Array.make plan.n [] in
  let payloads = Array.make plan.n [] in
  let fk_attrs = Array.make plan.n [] in
  let conns = ref [] in
  keys.(0) <- [ "k0" ];
  payloads.(0) <- [ "p0" ];
  List.iteri
    (fun idx (parent, kind) ->
      let i = idx + 1 in
      match kind with
      | 0 ->
          (* ownership parent -> i *)
          keys.(i) <- keys.(parent) @ [ Fmt.str "k%d" i ];
          payloads.(i) <- [ Fmt.str "p%d" i ];
          conns :=
            Connection.ownership (Fmt.str "T%d" parent) (Fmt.str "T%d" i)
              ~on:(keys.(parent), keys.(parent))
            :: !conns
      | 1 ->
          (* i references parent through fresh nonkey (int) fk attrs *)
          let fks = List.map (fun a -> Fmt.str "fk%d_%s" i a) keys.(parent) in
          keys.(i) <- [ Fmt.str "k%d" i ];
          payloads.(i) <- [ Fmt.str "p%d" i ];
          fk_attrs.(i) <- fks;
          conns :=
            Connection.reference (Fmt.str "T%d" i) (Fmt.str "T%d" parent)
              ~on:(fks, keys.(parent))
            :: !conns
      | _ ->
          (* subset parent -> i *)
          keys.(i) <- keys.(parent);
          payloads.(i) <- [ Fmt.str "p%d" i ];
          conns :=
            Connection.subset (Fmt.str "T%d" parent) (Fmt.str "T%d" i)
              ~on:(keys.(parent), keys.(parent))
            :: !conns)
    plan.attach;
  (* extra cross references a -> b through fresh nonkey fk attributes *)
  let extra_nonkeys = Array.make plan.n [] in
  List.iteri
    (fun j (a, b) ->
      if a <> b then begin
        let fks = List.map (fun k -> Fmt.str "xf%d_%d_%s" j a k) keys.(b) in
        extra_nonkeys.(a) <- extra_nonkeys.(a) @ fks;
        conns :=
          Connection.reference (Fmt.str "T%d" a) (Fmt.str "T%d" b)
            ~on:(fks, keys.(b))
          :: !conns
      end)
    plan.extra_refs;
  let schemas =
    List.init plan.n (fun i ->
        let attrs =
          List.map Attribute.int keys.(i)
          @ List.map Attribute.str payloads.(i)
          @ List.map Attribute.int fk_attrs.(i)
          @ List.map Attribute.int extra_nonkeys.(i)
        in
        Schema.make_exn ~name:(Fmt.str "T%d" i) ~attributes:attrs ~key:keys.(i))
  in
  Schema_graph.make schemas (List.rev !conns)

let plan_arb =
  QCheck.make
    ~print:(fun p ->
      Fmt.str "n=%d attach=%a extra=%a" p.n
        Fmt.(Dump.list (Dump.pair int int))
        p.attach
        Fmt.(Dump.list (Dump.pair int int))
        p.extra_refs)
    plan_gen

let metric = Metric.make ~threshold:0.3 ()

let prop_generated_graphs_valid =
  QCheck.Test.make ~name:"random structural schemas validate" ~count:200
    plan_arb
    (fun plan -> Result.is_ok (build plan))

let with_graph plan f =
  match build plan with Error _ -> false | Ok g -> f g

let prop_expansion_invariants =
  QCheck.Test.make ~name:"expansion: unique labels, no cycles, monotone"
    ~count:200 plan_arb
    (fun plan ->
      with_graph plan (fun g ->
          let tree = Generate.tree metric g ~pivot:"T0" in
          let labels = Expansion.labels tree in
          let unique =
            List.length labels = List.length (List.sort_uniq compare labels)
          in
          let rec no_repeat path (n : Expansion.node) =
            (not (List.mem n.Expansion.relation path))
            && List.for_all
                 (no_repeat (n.Expansion.relation :: path))
                 n.Expansion.children
          in
          let rec monotone (n : Expansion.node) =
            List.for_all
              (fun (c : Expansion.node) ->
                c.Expansion.relevance <= n.Expansion.relevance +. 1e-9
                && monotone c)
              n.Expansion.children
          in
          unique && no_repeat [] tree && monotone tree))

let prop_full_definition_validates =
  QCheck.Test.make ~name:"full definition over random schema validates"
    ~count:200 plan_arb
    (fun plan ->
      with_graph plan (fun g ->
          match Generate.full metric g ~name:"t" ~pivot:"T0" with
          | Ok vo -> Definition.complexity vo >= 1
          | Error _ -> false))

let prop_island_prefix_closed =
  QCheck.Test.make ~name:"dependency island is prefix-closed" ~count:200
    plan_arb
    (fun plan ->
      with_graph plan (fun g ->
          match Generate.full metric g ~name:"t" ~pivot:"T0" with
          | Error _ -> false
          | Ok vo ->
              let island = Island.island_labels vo in
              List.for_all
                (fun label ->
                  match Definition.parent_of vo label with
                  | None -> true
                  | Some parent -> List.mem parent.Definition.label island)
                island))

let prop_peninsulas_in_object =
  QCheck.Test.make ~name:"peninsulas are object relations outside the island"
    ~count:200 plan_arb
    (fun plan ->
      with_graph plan (fun g ->
          match Generate.full metric g ~name:"t" ~pivot:"T0" with
          | Error _ -> false
          | Ok vo ->
              let island = Island.island_relations vo in
              List.for_all
                (fun (rel, (c : Connection.t)) ->
                  List.mem rel (Definition.relations vo)
                  && (not (List.mem rel island))
                  && List.mem c.Connection.target island)
                (Island.peninsulas g vo)))

let prop_definition_store_roundtrip =
  QCheck.Test.make ~name:"random definitions survive the store" ~count:100
    plan_arb
    (fun plan ->
      with_graph plan (fun g ->
          match Generate.full metric g ~name:"t" ~pivot:"T0" with
          | Error _ -> false
          | Ok vo -> (
              match
                Penguin.Store.definition_of_sexp g
                  (Penguin.Store.definition_to_sexp vo)
              with
              | Ok vo' -> Definition.to_ascii vo = Definition.to_ascii vo'
              | Error _ -> false)))

let suite =
  [
    qtest prop_generated_graphs_valid;
    qtest prop_expansion_invariants;
    qtest prop_full_definition_validates;
    qtest prop_island_prefix_closed;
    qtest prop_peninsulas_in_object;
    qtest prop_definition_store_roundtrip;
  ]
