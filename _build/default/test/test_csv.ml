open Relational
open Test_util

let schema =
  Schema.make_exn ~name:"R"
    ~attributes:[ Attribute.int "id"; Attribute.str "txt"; Attribute.float "x" ]
    ~key:[ "id" ]

let test_parse_line () =
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ]
    (Csv.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "say \"hi\"" ]
    (Csv.parse_line "\"say \"\"hi\"\"\"");
  Alcotest.(check (list string)) "empty cells" [ ""; ""; "" ] (Csv.parse_line ",,");
  Alcotest.(check (list string)) "single" [ "x" ] (Csv.parse_line "x")

let test_load () =
  let doc = "id,txt,x\n1,hello,1.5\n2,\"a,b\",2.5\n3,null,null\n" in
  let r = check_ok (Csv.load schema doc) in
  Alcotest.(check int) "three rows" 3 (Relation.cardinality r);
  let t3 = Option.get (Relation.lookup r [ vi 3 ]) in
  Alcotest.check value_testable "null cell" Value.Null (Tuple.get t3 "x");
  let t2 = Option.get (Relation.lookup r [ vi 2 ]) in
  Alcotest.check value_testable "quoted" (vs "a,b") (Tuple.get t2 "txt")

let test_load_column_order_free () =
  let doc = "x,id,txt\n9.0,7,seven\n" in
  let r = check_ok (Csv.load schema doc) in
  Alcotest.check value_testable "mapped" (vs "seven")
    (Tuple.get (Option.get (Relation.lookup r [ vi 7 ])) "txt")

let test_load_errors () =
  check_err_contains ~sub:"empty" (Csv.load schema "");
  check_err_contains ~sub:"unknown column" (Csv.load schema "id,txt,x,zz\n");
  check_err_contains ~sub:"missing column" (Csv.load schema "id,txt\n");
  check_err_contains ~sub:"expected 3 cells" (Csv.load schema "id,txt,x\n1,a\n");
  check_err_contains ~sub:"not an int" (Csv.load schema "id,txt,x\nseven,a,1.0\n")

let test_dump_roundtrip () =
  let r =
    Relation.of_list_exn schema
      [
        tuple [ "id", vi 1; "txt", vs "plain"; "x", vf 0.5 ];
        tuple [ "id", vi 2; "txt", vs "with,comma"; "x", Value.Null ];
        tuple [ "id", vi 3; "txt", vs "q\"uote"; "x", vf 2.0 ];
        tuple [ "id", vi 4; "txt", vs "null"; "x", vf 1.0 ];
      ]
  in
  let doc = Csv.dump r in
  let r' = check_ok (Csv.load schema doc) in
  Alcotest.(check bool) "roundtrip" true (Relation.equal r r')

let prop_roundtrip =
  let cell_gen =
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun s -> Value.Str s)
            (string_size (int_bound 6)
               ~gen:(oneofl [ 'a'; 'b'; ','; '"'; ' '; 'n' ])) ])
  in
  let row_gen i =
    QCheck.Gen.map
      (fun (s, x) -> tuple [ "id", vi i; "txt", s; "x", x ])
      QCheck.Gen.(pair cell_gen (oneof [ return Value.Null; map (fun f -> vf f) (float_bound_inclusive 100.) ]))
  in
  let rel_gen =
    QCheck.Gen.(
      int_bound 10 >>= (fun n ->
          map
            (fun rows -> Relation.of_list_exn schema rows)
            (flatten_l (List.init n row_gen))))
  in
  QCheck.Test.make ~name:"csv dump/load roundtrip" ~count:100
    (QCheck.make rel_gen)
    (fun r ->
      match Csv.load schema (Csv.dump r) with
      | Ok r' -> Relation.equal r r'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "parse_line" `Quick test_parse_line;
    Alcotest.test_case "load" `Quick test_load;
    Alcotest.test_case "column order free" `Quick test_load_column_order_free;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "dump roundtrip" `Quick test_dump_roundtrip;
    qtest prop_roundtrip;
  ]
