(* End-to-end property tests: randomly generated view-object updates must
   preserve the structural model's invariants, and inverse update pairs
   must compose to the identity on the database. *)
open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega
let spec = Penguin.University.omega_translator
let base_db = Penguin.University.seeded_db ()

(* Generator for fresh course instances over the seeded database. *)
let course_gen =
  QCheck.Gen.(
    let* suffix = int_range 100 999 in
    let* units = int_range 1 6 in
    let* level = oneofl [ "grad"; "undergrad" ] in
    let* dept =
      oneofl [ "Computer Science"; "Mathematics"; "Electrical Engineering" ]
    in
    let* grade_pids = oneof [ return []; list_size (int_range 1 4) (int_range 1 6) ] in
    let grade_pids = List.sort_uniq compare grade_pids in
    let id = Fmt.str "CSX%d" suffix in
    let students pid =
      (* pids 1-6 exist in STUDENT with known programs; reuse them *)
      [ Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
          (Tuple.make [ "pid", Value.Int pid ]) ]
    in
    let grades =
      List.map
        (fun pid ->
          Instance.make ~label:"GRADES" ~relation:"GRADES"
            ~tuple:(Tuple.make [ "pid", Value.Int pid; "grade", Value.Str "A" ])
            ~children:[ "STUDENT#2", students pid ])
        grade_pids
    in
    return
      (Instance.make ~label:"COURSES" ~relation:"COURSES"
         ~tuple:
           (Tuple.make
              [ "course_id", Value.Str id; "title", Value.Str ("T" ^ id);
                "units", Value.Int units; "level", Value.Str level ])
         ~children:
           [ "DEPARTMENT",
             [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
                 (Tuple.make [ "dept_name", Value.Str dept ]) ];
             "GRADES", grades ]))

let course_arb =
  QCheck.make ~print:(fun i -> Instance.to_ascii i) course_gen

let consistent db = Integrity.check g db = []

let prop_insert_preserves_consistency =
  QCheck.Test.make ~name:"VO-CI preserves global consistency" ~count:60
    course_arb
    (fun inst ->
      match
        (Vo_core.Engine.apply g base_db omega spec (Vo_core.Request.insert inst))
          .Vo_core.Engine.result
      with
      | Transaction.Committed db -> consistent db
      | Transaction.Rolled_back _ -> true)

let prop_insert_then_delete_is_identity =
  QCheck.Test.make ~name:"insert;delete returns the original database"
    ~count:60 course_arb
    (fun inst ->
      match
        (Vo_core.Engine.apply g base_db omega spec (Vo_core.Request.insert inst))
          .Vo_core.Engine.result
      with
      | Transaction.Rolled_back _ -> true
      | Transaction.Committed db1 -> (
          let course_id = Tuple.get inst.Instance.tuple "course_id" in
          let stored =
            List.find
              (fun (i : Instance.t) ->
                Value.equal (Tuple.get i.Instance.tuple "course_id") course_id)
              (Instantiate.instantiate db1 omega)
          in
          match
            (Vo_core.Engine.apply g db1 omega spec (Vo_core.Request.delete stored))
              .Vo_core.Engine.result
          with
          | Transaction.Committed db2 -> Database.equal base_db db2
          | Transaction.Rolled_back _ -> false))

let prop_double_insert_rejected =
  QCheck.Test.make ~name:"re-inserting the stored instance is rejected"
    ~count:40 course_arb
    (fun inst ->
      match
        (Vo_core.Engine.apply g base_db omega spec (Vo_core.Request.insert inst))
          .Vo_core.Engine.result
      with
      | Transaction.Rolled_back _ -> true
      | Transaction.Committed db1 -> (
          let course_id = Tuple.get inst.Instance.tuple "course_id" in
          let stored =
            List.find
              (fun (i : Instance.t) ->
                Value.equal (Tuple.get i.Instance.tuple "course_id") course_id)
              (Instantiate.instantiate db1 omega)
          in
          match
            (Vo_core.Engine.apply g db1 omega spec (Vo_core.Request.insert stored))
              .Vo_core.Engine.result
          with
          | Transaction.Rolled_back _ -> true
          | Transaction.Committed _ -> false))

let rename_gen =
  QCheck.Gen.(
    let* existing = oneofl [ "CS345"; "CS101"; "MATH51"; "EE280" ] in
    let* suffix = int_range 100 999 in
    return (existing, Fmt.str "NEW%d" suffix))

let prop_key_replacement_preserves_consistency =
  QCheck.Test.make ~name:"VO-R key replacement preserves consistency"
    ~count:40
    (QCheck.make rename_gen)
    (fun (old_id, new_id) ->
      let old_i =
        List.hd
          (Instantiate.instantiate
             ~where:(Predicate.eq_str "course_id" old_id)
             base_db omega)
      in
      let new_i =
        Instance.with_tuple old_i
          (Tuple.set old_i.Instance.tuple "course_id" (Value.Str new_id))
      in
      match
        (Vo_core.Engine.apply g base_db omega spec
           (Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i))
          .Vo_core.Engine.result
      with
      | Transaction.Committed db ->
          consistent db
          && (not
                (Relation.mem_key (Database.relation_exn db "COURSES")
                   [ Value.Str old_id ]))
          && Relation.mem_key (Database.relation_exn db "COURSES")
               [ Value.Str new_id ]
      | Transaction.Rolled_back _ -> false)

let prop_nonkey_replacement_count_stable =
  QCheck.Test.make ~name:"VO-R nonkey replacement keeps tuple counts"
    ~count:40
    (QCheck.make QCheck.Gen.(pair (oneofl [ "CS345"; "CS101"; "EE280" ]) (int_range 1 9)))
    (fun (id, units) ->
      let old_i =
        List.hd
          (Instantiate.instantiate ~where:(Predicate.eq_str "course_id" id)
             base_db omega)
      in
      let new_i =
        Instance.with_tuple old_i
          (Tuple.set old_i.Instance.tuple "units" (Value.Int units))
      in
      match
        (Vo_core.Engine.apply g base_db omega spec
           (Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i))
          .Vo_core.Engine.result
      with
      | Transaction.Committed db ->
          consistent db
          && Database.total_tuples db = Database.total_tuples base_db
      | Transaction.Rolled_back _ -> false)

let prop_deletion_removes_island_only =
  QCheck.Test.make ~name:"VO-CD touches island + referencing relations only"
    ~count:20
    (QCheck.make QCheck.Gen.(oneofl [ "CS345"; "CS101"; "MATH51"; "EE280" ]))
    (fun id ->
      let i =
        List.hd
          (Instantiate.instantiate ~where:(Predicate.eq_str "course_id" id)
             base_db omega)
      in
      match Vo_core.Vo_cd.translate g base_db omega spec i with
      | Error _ -> false
      | Ok ops ->
          List.for_all
            (fun op ->
              List.mem (Op.relation op) [ "COURSES"; "GRADES"; "CURRICULUM" ])
            ops)

(* Surface layers: random textual updates keep the database consistent,
   and JSON export of arbitrary stored instances is well-formed. *)
let prop_upql_updates_preserve_consistency =
  QCheck.Test.make ~name:"random upql updates preserve consistency" ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* course = oneofl [ "CS345"; "CS101"; "MATH51"; "EE280" ] in
         let* pid = int_range 1 6 in
         let* grade = oneofl [ "A"; "B+"; "C"; "F" ] in
         let* units = int_range 1 9 in
         let* which = int_bound 2 in
         return (course, pid, grade, units, which)))
    (fun (course, pid, grade, units, which) ->
      let ws = Penguin.University.workspace () in
      let stmt =
        match which with
        | 0 -> Fmt.str "set units = %d where course_id = '%s'" units course
        | 1 ->
            Fmt.str "set GRADES[pid = %d] grade = '%s' where course_id = '%s'"
              pid grade course
        | _ -> Fmt.str "delete where course_id = '%s'" course
      in
      match Penguin.Upql.apply ws ~object_name:"omega" stmt with
      | Error _ -> false
      | Ok (ws', _outcomes) ->
          Result.is_ok (Penguin.Workspace.check_consistency ws'))

let json_balanced json =
  let depth = ref 0 and ok = ref true and in_str = ref false in
  String.iteri
    (fun idx c ->
      if !in_str then begin
        if c = '"' && json.[idx - 1] <> '\\' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    json;
  !ok && !depth = 0

let prop_json_wellformed =
  QCheck.Test.make ~name:"json export is balanced for random instances"
    ~count:60 course_arb
    (fun inst ->
      match
        (Vo_core.Engine.apply g base_db omega spec (Vo_core.Request.insert inst))
          .Vo_core.Engine.result
      with
      | Transaction.Rolled_back _ -> true
      | Transaction.Committed db1 ->
          List.for_all
            (fun i -> json_balanced (Penguin.Json_export.instance omega i))
            (Instantiate.instantiate db1 omega))

let prop_instance_sexp_roundtrip =
  QCheck.Test.make ~name:"random stored instances roundtrip through sexp"
    ~count:60 course_arb
    (fun inst ->
      match
        (Vo_core.Engine.apply g base_db omega spec (Vo_core.Request.insert inst))
          .Vo_core.Engine.result
      with
      | Transaction.Rolled_back _ -> true
      | Transaction.Committed db1 ->
          List.for_all
            (fun i ->
              match
                Result.bind
                  (Relational.Sexp.parse
                     (Relational.Sexp.to_string (Penguin.Store.instance_to_sexp i)))
                  Penguin.Store.instance_of_sexp
              with
              | Ok i' -> Instance.equal i i'
              | Error _ -> false)
            (Instantiate.instantiate db1 omega))

let suite =
  [
    qtest prop_upql_updates_preserve_consistency;
    qtest prop_json_wellformed;
    qtest prop_instance_sexp_roundtrip;
    qtest prop_insert_preserves_consistency;
    qtest prop_insert_then_delete_is_identity;
    qtest prop_double_insert_rejected;
    qtest prop_key_replacement_preserves_consistency;
    qtest prop_nonkey_replacement_count_stable;
    qtest prop_deletion_removes_island_only;
  ]
