(* Benchmark harness: one bechamel test (or test series) per experiment of
   EXPERIMENTS.md, preceded by the paper-artifact reproductions.

   Run with: dune exec bench/main.exe [-- --quick] [-- --json FILE]

     --quick      smoke mode: tiny measurement quota and reduced sweeps
                  (CI uses this to exercise every experiment per push)
     --json FILE  additionally write per-group ns/op results to FILE,
                  for BENCH_*.json trajectory tracking *)

open Bechamel
open Relational
open Structural
open Viewobject

let quick = ref false
let json_path : string option ref = ref None

(* --only e17 (or --only e15,e16): run a subset of the experiments —
   iteration and CI triage; the gate still wants the full set. *)
let only : string list ref = ref []

let parse_argv () =
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        go rest
    | [ "--json" ] -> failwith "--json requires a file argument"
    | "--only" :: names :: rest ->
        only := String.split_on_char ',' names;
        go rest
    | [ "--only" ] -> failwith "--only requires an experiment list"
    | arg :: _ -> failwith (Fmt.str "unknown argument %s" arg)
  in
  go (List.tl (Array.to_list Sys.argv))

let want name f = if !only = [] || List.mem name !only then f ()

(* Collected (group, (test name, ns/op) list), in run order. *)
let collected : (string * (string * float) list) list ref = ref []

(* The document Bench_gate.parse (the CI regression gate) and the
   BENCH_*.json trajectory tooling read. Written crash-safely: a bench
   process killed mid-write must not leave a truncated document where
   the gate would misread it as "every group missing". *)
let write_json path =
  let module J = Obs.Json in
  let groups =
    List.rev_map
      (fun (group, rows) ->
        J.Obj
          [ "group", J.Str group;
            "results",
            J.Arr
              (List.map
                 (fun (name, ns) ->
                   J.Obj
                     [ "name", J.Str name;
                       "ns_per_op",
                       (if Float.is_finite ns then J.Num ns else J.Null) ])
                 rows) ])
      !collected
  in
  let doc =
    J.Obj
      [ "quick", J.Bool !quick;
        "groups", J.Arr groups;
        "metrics", Obs.Metrics.to_json () ]
  in
  match
    Penguin.Fsio.(atomic_write default) ~path (J.to_string doc ^ "\n")
  with
  | Ok () -> Fmt.pr "@.wrote benchmark results to %s@." path
  | Error e ->
      failwith (Fmt.str "writing %s: %s" path (Penguin.Error.to_string e))

let section title = Fmt.pr "@.==================== %s ====================@." title

(* --- bechamel driver ------------------------------------------------ *)

let run_group name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    if !quick then Benchmark.cfg ~limit:200 ~quota:(Time.second 0.02) ~kde:None ()
    else Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (test_name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "@.%-58s %14s %14s@." "benchmark" "time/run" "runs/sec";
  Fmt.pr "%s@." (String.make 88 '-');
  List.iter
    (fun (n, ns) ->
      let time_str =
        if ns < 1_000. then Fmt.str "%.0f ns" ns
        else if ns < 1_000_000. then Fmt.str "%.2f us" (ns /. 1e3)
        else Fmt.str "%.3f ms" (ns /. 1e6)
      in
      Fmt.pr "%-58s %14s %14.0f@." n time_str (1e9 /. ns))
    rows;
  collected := (name, rows) :: !collected;
  rows

(* Record hand-timed rows (name, ns/op) under the same table format and
   gate document as a bechamel group — for experiments whose unit of
   work is too coarse or too stateful for the bechamel driver. *)
let record_group name rows =
  Fmt.pr "@.%-58s %14s %14s@." "benchmark" "time/run" "runs/sec";
  Fmt.pr "%s@." (String.make 88 '-');
  List.iter
    (fun (n, ns) ->
      let time_str =
        if ns < 1_000. then Fmt.str "%.0f ns" ns
        else if ns < 1_000_000. then Fmt.str "%.2f us" (ns /. 1e3)
        else Fmt.str "%.3f ms" (ns /. 1e6)
      in
      Fmt.pr "%-58s %14s %14.0f@." (name ^ " " ^ n) time_str (1e9 /. ns))
    rows;
  collected := (name, rows) :: !collected

let stage = Staged.stage

(* --- E1: Figure 1, structural-schema construction ------------------- *)

let e1 () =
  section "E1 (Figure 1): structural schema";
  Fmt.pr "%s@." (Penguin.Paper.figure1 ());
  let university_schemas =
    List.map
      (Schema_graph.schema_exn Penguin.University.graph)
      (Schema_graph.relations Penguin.University.graph)
  in
  let university_conns = Schema_graph.connections Penguin.University.graph in
  let build_university () =
    match Schema_graph.make university_schemas university_conns with
    | Ok g -> g
    | Error e -> failwith e
  in
  let chain_test n =
    let schemas = List.init n Workloads.chain_relation in
    let g = Workloads.chain_graph n in
    let conns = Schema_graph.connections g in
    Test.make ~name:(Fmt.str "validate-chain:%d" n)
      (stage (fun () ->
           match Schema_graph.make schemas conns with
           | Ok g -> g
           | Error e -> failwith e))
  in
  ignore
    (run_group "e1"
       (Test.make ~name:"validate-university" (stage build_university)
       :: List.map chain_test [ 8; 32; 128 ]))

(* --- E2/E3: Figures 2-3, view-object generation --------------------- *)

let e2_e3 () =
  section "E2 (Figure 2): view-object generation";
  Fmt.pr "%s@." (Penguin.Paper.figure2a ());
  Fmt.pr "%s@." (Penguin.Paper.figure2b ());
  Fmt.pr "%s@." (Penguin.Paper.figure2c ());
  section "E3 (Figure 3): alternate view object";
  Fmt.pr "%s@." (Penguin.Paper.figure3 ());
  let g = Penguin.University.graph in
  let omega_gen () =
    let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
    match Generate.prune g tree ~name:"omega" ~keep:Penguin.University.omega_keep with
    | Ok vo -> vo
    | Error e -> failwith e
  in
  let omega_prime_gen () =
    let tree = Generate.tree Metric.default g ~pivot:"COURSES" in
    match
      Generate.prune g tree ~name:"omega_prime"
        ~keep:
          [ "COURSES", [ "course_id"; "title"; "units"; "level" ];
            Penguin.University.faculty_label, [ "pid"; "rank"; "office" ];
            Penguin.University.student_label, [ "pid"; "degree_program"; "year" ] ]
    with
    | Ok vo -> vo
    | Error e -> failwith e
  in
  let expand_chain n =
    let cg = Workloads.chain_graph n in
    Test.make ~name:(Fmt.str "expand-chain:%d" n)
      (stage (fun () -> Generate.tree (Metric.make ~threshold:0.01 ()) cg ~pivot:"R0"))
  in
  let threshold_sweep t =
    let metric = Metric.make ~threshold:t () in
    Test.make ~name:(Fmt.str "expand-university:theta=%.2f" t)
      (stage (fun () -> Generate.tree metric g ~pivot:"COURSES"))
  in
  ignore
    (run_group "e2-e3"
       ([ Test.make ~name:"generate-omega (fig2)" (stage omega_gen);
          Test.make ~name:"generate-omega-prime (fig3)" (stage omega_prime_gen) ]
       @ List.map expand_chain [ 4; 8; 16 ]
       @ List.map threshold_sweep [ 0.3; 0.5; 0.9 ]))

(* --- E4: Figure 4, instantiation ------------------------------------ *)

let e4 () =
  section "E4 (Figure 4): instantiation";
  Fmt.pr "%s@." (Penguin.Paper.figure4 ());
  let db = Penguin.University.seeded_db () in
  let omega = Penguin.University.omega in
  let q =
    Vo_query.C_and
      ( Vo_query.C_node ("COURSES", Predicate.eq_str "level" "grad"),
        Vo_query.C_count (Penguin.University.student_label, Predicate.Lt, 5) )
  in
  (* The default path: connection indexes come with the database
     ({!Schema_graph}), so instantiation is index-served out of the box. *)
  let fanout_test gsize =
    let dbg = Workloads.enrollment_db gsize in
    Test.make ~name:(Fmt.str "instantiate-course:fanout=%d" gsize)
      (stage (fun () ->
           Instantiate.instantiate
             ~where:(Predicate.eq_str "course_id" "BENCH1")
             dbg omega))
  in
  (* ablation: the same walk with the indexes stripped — every child
     fetch degrades to a relation scan *)
  let fanout_noindex_test gsize =
    let dbg = Workloads.strip_indexes (Workloads.enrollment_db gsize) in
    Test.make ~name:(Fmt.str "instantiate-course:fanout=%d,noindex" gsize)
      (stage (fun () ->
           Instantiate.instantiate
             ~where:(Predicate.eq_str "course_id" "BENCH1")
             dbg omega))
  in
  let pushdown_db = Workloads.enrollment_db 64 in
  let pd_query =
    Vo_query.C_node ("COURSES", Predicate.eq_str "course_id" "CS345")
  in
  ignore
    (run_group "e4"
       ([ Test.make ~name:"figure4-query" (stage (fun () -> Vo_query.run db omega q)) ]
       @ List.map fanout_test [ 1; 16; 64; 256 ]
       @ List.map fanout_noindex_test [ 64; 256 ]
       @ [
           (* ablation: pivot-predicate pushdown on/off *)
           Test.make ~name:"query:pushdown-on"
             (stage (fun () -> Vo_query.run pushdown_db omega pd_query));
           Test.make ~name:"query:pushdown-off"
             (stage (fun () ->
                  List.filter
                    (Vo_query.holds pd_query)
                    (Instantiate.instantiate pushdown_db omega)));
         ]))

(* --- E5: Section 6 dialog & amortization ----------------------------- *)

let choose_omega () =
  Vo_core.Dialog.choose ~ask_insertion:false ~ask_deletion:false
    Penguin.University.graph Penguin.University.omega
    (Vo_core.Dialog.scripted Vo_core.Dialog.paper_omega_answers)

let e5 () =
  section "E5 (Section 6): translator-choice dialog";
  Fmt.pr "%s@." (Penguin.Paper.section6_dialog ());
  Fmt.pr "@.With DEPARTMENT locked (footnote 5 pruning):@.%s@."
    (Penguin.Paper.section6_dialog_restrictive ());
  let _, events = choose_omega () in
  let n_questions = Vo_core.Dialog.question_count events in
  Fmt.pr
    "@.Question counts: full dialog %d; with DEPARTMENT locked %d (pruned).@."
    n_questions
    (let _, e' =
       Vo_core.Dialog.choose ~ask_insertion:false ~ask_deletion:false
         Penguin.University.graph Penguin.University.omega
         (Vo_core.Dialog.scripted Vo_core.Dialog.restrictive_department_answers)
     in
     Vo_core.Dialog.question_count e');
  (* Amortization: the dialog happens once per object, not once per
     update. Questions asked for N updates: *)
  Fmt.pr "@.DBA questions for N updates (the paper's amortization claim):@.";
  Fmt.pr "%-8s %26s %26s@." "N" "translator-at-definition" "dialog-per-update";
  List.iter
    (fun n ->
      Fmt.pr "%-8d %26d %26d@." n n_questions (n * n_questions))
    [ 1; 10; 100; 1000 ];
  let g = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let db = Penguin.University.seeded_db () in
  let _spec = Penguin.University.omega_translator in
  let base_instance = Penguin.University.cs345_instance db in
  let request =
    match
      Vo_core.Request.partial_modify base_instance ~label:"GRADES"
        ~at:(Tuple.make [ "pid", Value.Int 1 ])
        ~f:(fun t -> Tuple.set t "grade" (Value.Str "A+"))
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  let updates n spec =
    for _ = 1 to n do
      ignore (Vo_core.Engine.apply g db omega spec request)
    done
  in
  let amortized n =
    Test.make ~name:(Fmt.str "amortized:updates=%d" n)
      (stage (fun () ->
           let spec, _ = choose_omega () in
           updates n spec))
  in
  let per_update n =
    Test.make ~name:(Fmt.str "dialog-per-update:updates=%d" n)
      (stage (fun () ->
           for _ = 1 to n do
             let spec, _ = choose_omega () in
             updates 1 spec
           done))
  in
  let star n =
    let sg = Workloads.star_graph n in
    let vo =
      match Generate.full (Metric.make ~threshold:0.3 ()) sg ~name:"star" ~pivot:"PIVOT" with
      | Ok vo -> vo
      | Error e -> failwith e
    in
    Test.make ~name:(Fmt.str "dialog-star:relations=%d" n)
      (stage (fun () -> Vo_core.Dialog.choose sg vo Vo_core.Dialog.all_yes))
  in
  ignore
    (run_group "e5"
       ([ Test.make ~name:"choose-translator (omega)" (stage choose_omega) ]
       @ List.map star [ 2; 8; 32 ]
       @ List.concat_map (fun n -> [ amortized n; per_update n ]) [ 1; 10; 100 ]))

(* --- E6: the EES345 replacement -------------------------------------- *)

let e6 () =
  section "E6 (Section 6): EES345 replacement under both translators";
  Fmt.pr "%s@." (Penguin.Paper.ees345_example ());
  let g = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let db = Penguin.University.seeded_db () in
  let old_i = Penguin.University.cs345_instance db in
  let new_i = Penguin.University.ees345_replacement old_i in
  let request = Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i in
  ignore
    (run_group "e6"
       [
         Test.make ~name:"replace-permissive (commit)"
           (stage (fun () ->
                Vo_core.Engine.apply g db omega
                  Penguin.University.omega_translator request));
         Test.make ~name:"replace-restrictive (reject)"
           (stage (fun () ->
                Vo_core.Engine.apply g db omega
                  Penguin.University.omega_translator_restrictive request));
       ])

(* --- E7: algorithm scaling ------------------------------------------- *)

let e7 () =
  section "E7: VO-CD / VO-CI / VO-R scaling";
  let cd_chain depth =
    let g = Workloads.chain_graph depth in
    let db = Workloads.populate_chain g ~depth ~fanout:4 in
    let vo = Workloads.chain_object g in
    let inst = Workloads.chain_instance db vo in
    let spec = Vo_core.Translator_spec.permissive ~object_name:"chain" in
    Test.make ~name:(Fmt.str "vo-cd:island-depth=%d" depth)
      (stage (fun () ->
           match Vo_core.Vo_cd.translate g db vo spec inst with
           | Ok ops -> ops
           | Error e -> failwith e))
  in
  let ci_chain depth =
    let g = Workloads.chain_graph depth in
    let db = Workloads.populate_chain g ~depth ~fanout:4 in
    let vo = Workloads.chain_object g in
    let inst = Workloads.chain_instance db vo in
    let empty = Schema_graph.create_database g in
    let spec = Vo_core.Translator_spec.permissive ~object_name:"chain" in
    Test.make ~name:(Fmt.str "vo-ci:island-depth=%d" depth)
      (stage (fun () ->
           match Vo_core.Vo_ci.translate g empty vo spec inst with
           | Ok ops -> ops
           | Error e -> failwith e))
  in
  let r_fixups n =
    let db = Workloads.curriculum_db n in
    let omega = Penguin.University.omega in
    let g = Penguin.University.graph in
    let old_i = Penguin.University.cs345_instance db in
    let new_i =
      Instance.with_tuple old_i
        (Tuple.set old_i.Instance.tuple "course_id" (Value.Str "CS346"))
    in
    let spec = Penguin.University.omega_translator in
    Test.make ~name:(Fmt.str "vo-r:peninsula-rows=%d" n)
      (stage (fun () ->
           match Vo_core.Vo_r.translate g db omega spec ~old_instance:old_i ~new_instance:new_i with
           | Ok ops -> ops
           | Error e -> failwith e))
  in
  let identity =
    let db = Penguin.University.seeded_db () in
    let g = Penguin.University.graph in
    let omega = Penguin.University.omega in
    let i = Penguin.University.cs345_instance db in
    let spec = Penguin.University.omega_translator in
    Test.make ~name:"vo-r:identity (all R-1)"
      (stage (fun () ->
           match Vo_core.Vo_r.translate g db omega spec ~old_instance:i ~new_instance:i with
           | Ok ops -> ops
           | Error e -> failwith e))
  in
  ignore
    (run_group "e7"
       (List.map cd_chain [ 2; 3; 4 ]
       @ List.map ci_chain [ 2; 3; 4 ]
       @ List.map r_fixups [ 10; 100; 1000 ]
       @ [ identity ]))

(* --- E8: flat-view baseline vs view object --------------------------- *)

let e8 () =
  section "E8: Keller flat-view baseline vs view object";
  let db = Penguin.University.seeded_db () in
  let g = Penguin.University.graph in
  let flat = Workloads.flat_course_view db in
  let flat_tr =
    { (Keller.Translator.default flat) with
      Keller.Translator.delete_from = [ "COURSES"; "GRADES" ] }
  in
  let mini = Workloads.mini_omega in
  let mini_spec = Penguin.University.omega_translator in
  let inst =
    match
      Instantiate.instantiate ~where:(Predicate.eq_str "course_id" "CS345") db mini
    with
    | [ i ] -> i
    | _ -> failwith "mini instance"
  in
  (* the same logical update: remove course CS345 with its grades *)
  let keller_delete () =
    match
      Keller.Translator.translate db flat_tr
        (Keller.Criteria.V_delete (Tuple.make [ "course_id", Value.Str "CS345" ]))
    with
    | Ok ops -> ops
    | Error e -> failwith e
  in
  let vo_delete () =
    match
      Vo_core.Vo_cd.translate g db mini
        { mini_spec with Vo_core.Translator_spec.reference_actions = [];
          default_reference_action = Structural.Integrity.Delete_referencing }
        inst
    with
    | Ok ops -> ops
    | Error e -> failwith e
  in
  let keller_ops = keller_delete () in
  let vo_ops = vo_delete () in
  Fmt.pr "@.same logical deletion (CS345 and its grades):@.";
  Fmt.pr "  flat view translation: %d ops (view rows enumerated per base relation)@."
    (List.length keller_ops);
  Fmt.pr "  view object translation: %d ops (island + peninsula handling built in)@."
    (List.length vo_ops);
  let keller_replace () =
    match
      Keller.Translator.translate db flat_tr
        (Keller.Criteria.V_replace
           ( Tuple.make [ "course_id", Value.Str "CS345"; "pid", Value.Int 1 ],
             Tuple.make [ "grade", Value.Str "A+" ] ))
    with
    | Ok ops -> ops
    | Error e -> failwith e
  in
  let vo_replace_req =
    let i =
      match
        Instantiate.instantiate ~where:(Predicate.eq_str "course_id" "CS345") db mini
      with
      | [ i ] -> i
      | _ -> failwith "mini"
    in
    match
      Vo_core.Request.partial_modify i ~label:"GRADES"
        ~at:(Tuple.make [ "pid", Value.Int 1 ])
        ~f:(fun t -> Tuple.set t "grade" (Value.Str "A+"))
    with
    | Ok (Vo_core.Request.Replace { old_instance; new_instance }) ->
        old_instance, new_instance
    | _ -> failwith "request"
  in
  let vo_replace () =
    let old_instance, new_instance = vo_replace_req in
    match
      Vo_core.Vo_r.translate g db mini mini_spec ~old_instance ~new_instance
    with
    | Ok ops -> ops
    | Error e -> failwith e
  in
  ignore
    (run_group "e8"
       [
         Test.make ~name:"keller:delete-course" (stage keller_delete);
         Test.make ~name:"vo:delete-course" (stage vo_delete);
         Test.make ~name:"keller:grade-change" (stage keller_replace);
         Test.make ~name:"vo:grade-change" (stage vo_replace);
       ])

(* --- E9: full vs incremental global validation ----------------------- *)

let e9 () =
  section "E9: delta-driven incremental global validation";
  let g = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let spec = Penguin.University.omega_translator in
  (* One grade change on BENCH1 against university databases of growing
     cardinality: full validation re-checks every connection against
     every tuple, incremental only the transaction's delta. *)
  let case fanout =
    let db = Workloads.enrollment_db fanout in
    let inst = Workloads.bench1_instance db in
    let request =
      match
        Vo_core.Request.partial_modify inst ~label:"GRADES"
          ~at:(Tuple.make [ "pid", Value.Int 1001 ])
          ~f:(fun t -> Tuple.set t "grade" (Value.Str "B"))
      with
      | Ok r -> r
      | Error e -> failwith e
    in
    let ops =
      match Vo_core.Engine.translate g db omega spec request with
      | Ok ops -> ops
      | Error e -> failwith e
    in
    let db', delta =
      match Transaction.run_delta db ops with
      | Transaction.Committed db', delta -> db', delta
      | Transaction.Rolled_back { reason; _ }, _ -> failwith reason
    in
    db, db', delta, request
  in
  let validation_tests fanout =
    let _, db', delta, _ = case fanout in
    let n = Database.total_tuples db' in
    [
      Test.make ~name:(Fmt.str "validate-full:tuples=%06d" n)
        (stage (fun () -> Structural.Integrity.check g db'));
      Test.make ~name:(Fmt.str "validate-incremental:tuples=%06d" n)
        (stage (fun () -> Structural.Integrity.check_delta g db' ~delta));
    ]
  in
  let engine_tests fanout =
    let db, _, _, request = case fanout in
    let n = Database.total_tuples db in
    [
      Test.make ~name:(Fmt.str "engine-full:tuples=%06d" n)
        (stage (fun () ->
             Vo_core.Engine.apply ~validation:Vo_core.Global_validation.Full g
               db omega spec request));
      Test.make ~name:(Fmt.str "engine-incremental:tuples=%06d" n)
        (stage (fun () ->
             Vo_core.Engine.apply
               ~validation:Vo_core.Global_validation.Incremental g db omega
               spec request));
    ]
  in
  let fanouts = if !quick then [ 30 ] else [ 30; 300; 3400 ] in
  let rows =
    run_group "e9"
      (List.concat_map validation_tests fanouts
      @ List.concat_map engine_tests fanouts)
  in
  (* Speedup table: full / incremental at each cardinality. *)
  let time_of prefix n =
    List.assoc_opt (Fmt.str "e9 %s:tuples=%06d" prefix n) rows
  in
  Fmt.pr "@.step-4 speedup (full / incremental):@.";
  Fmt.pr "%-10s %16s %16s %10s@." "tuples" "full" "incremental" "speedup";
  List.iter
    (fun fanout ->
      let db = Workloads.enrollment_db fanout in
      let n = Database.total_tuples db in
      match time_of "validate-full" n, time_of "validate-incremental" n with
      | Some f, Some i ->
          Fmt.pr "%-10d %13.1f us %13.3f us %9.0fx@." n (f /. 1e3) (i /. 1e3)
            (f /. i)
      | _ -> ())
    fanouts

(* --- E10: group commit vs one-at-a-time serving ----------------------- *)

let e10 () =
  section "E10: group commit vs one-at-a-time serving";
  let graph = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let spec = Penguin.University.omega_translator in
  let max_batch = 32 in
  let db = Workloads.courses_db max_batch in
  let stage1 db r =
    match Vo_core.Engine.stage graph db omega spec r with
    | Ok s -> s
    | Error e -> failwith (Vo_core.Engine.stage_error_reason e)
  in
  let sequential ?validation db reqs =
    List.fold_left
      (fun db r ->
        let o = Vo_core.Engine.apply ?validation graph db omega spec r in
        match o.Vo_core.Engine.result with
        | Transaction.Committed db -> db
        | Transaction.Rolled_back { reason; _ } ->
            failwith (Fmt.str "sequential apply rejected: %s" reason))
      db reqs
  in
  (* A batch item is the pre-built request plus its retry function: a
     conflicting request that lost its group must be re-derived against
     the committed state (re-read the instance, re-apply the edit) —
     the OCC retry a {!Penguin.Session} rebase performs. *)
  let batch ~n ~colliding =
    List.init n (fun j ->
        let course = if j < colliding then 1 else j + 1 in
        ( Workloads.grade_change_request db ~course ~tag:j,
          fun db' -> Workloads.grade_change_request db' ~course ~tag:j ))
  in
  (* The serving loop: stage everything, partition into conflict-free
     groups, commit the first group, re-derive and re-stage the
     survivors, repeat. At conflict rate 0 this is stage-all plus one
     commit_group. *)
  let group_serve ?validation db items =
    let rec serve db staged =
      (* staged : (Engine.staged * retry) assoc, physical keys *)
      match Vo_core.Engine.plan_groups (List.map fst staged) with
      | [] -> db
      | grp :: rest -> (
          match Vo_core.Engine.commit_group ?validation graph db grp with
          | Error r -> failwith (Vo_core.Engine.group_rejection_reason r)
          | Ok (db, _) -> (
              match List.concat rest with
              | [] -> db
              | survivors ->
                  let retries = List.map (fun s -> List.assq s staged) survivors in
                  serve db
                    (List.map (fun retry -> stage1 db (retry db), retry) retries)))
    in
    serve db (List.map (fun (r, retry) -> stage1 db r, retry) items)
  in
  let sizes = if !quick then [ 8 ] else [ 1; 8; 32 ] in
  let seq_test n =
    let reqs = List.map fst (batch ~n ~colliding:0) in
    Test.make ~name:(Fmt.str "sequential:batch=%02d" n)
      (stage (fun () -> sequential db reqs))
  in
  let group_test n =
    let items = batch ~n ~colliding:0 in
    Test.make ~name:(Fmt.str "group:batch=%02d" n)
      (stage (fun () -> group_serve db items))
  in
  let commit_only n =
    let staged =
      List.map (fun (r, _) -> stage1 db r) (batch ~n ~colliding:0)
    in
    Test.make ~name:(Fmt.str "group-commit-only:batch=%02d" n)
      (stage (fun () ->
           match Vo_core.Engine.commit_group graph db staged with
           | Ok (db, _) -> db
           | Error r -> failwith (Vo_core.Engine.group_rejection_reason r)))
  in
  let conflict_test ~n ~colliding =
    let items = batch ~n ~colliding in
    Test.make
      ~name:
        (Fmt.str "group:batch=%02d,conflicts=%02d%%" n (100 * colliding / n))
      (stage (fun () -> group_serve db items))
  in
  let conflict_cases = if !quick then [ 8, 2 ] else [ 32, 8; 32, 16 ] in
  let rows =
    run_group "e10"
      (List.map seq_test sizes @ List.map group_test sizes
      @ List.map commit_only sizes
      @ List.map (fun (n, c) -> conflict_test ~n ~colliding:c) conflict_cases)
  in
  (* Speedup summary for the conflict-free batches. [sequential] is n
     full Engine.apply calls — translate, apply and validate inside the
     serialized section. [stage+commit] re-runs the whole pipeline from
     one snapshot (staging, i.e. translation, dominates and is paid
     either way). [commit] is the group commit of an already-staged
     batch: the serialized section of the session architecture, where
     staging happened at queue time — this is what group commit
     shrinks. *)
  Fmt.pr "@.group commit vs one-at-a-time (conflict-free):@.";
  Fmt.pr "%-8s %15s %15s %15s %10s@." "batch" "sequential" "stage+commit"
    "commit" "speedup";
  List.iter
    (fun n ->
      match
        ( List.assoc_opt (Fmt.str "e10 sequential:batch=%02d" n) rows,
          List.assoc_opt (Fmt.str "e10 group:batch=%02d" n) rows,
          List.assoc_opt (Fmt.str "e10 group-commit-only:batch=%02d" n) rows )
      with
      | Some s, Some g, Some c ->
          Fmt.pr "%-8d %12.1f us %12.1f us %12.1f us %9.2fx@." n (s /. 1e3)
            (g /. 1e3) (c /. 1e3) (s /. c)
      | _ -> ())
    sizes;
  (let acc_n = List.fold_left max 1 sizes in
   match
     ( List.assoc_opt (Fmt.str "e10 sequential:batch=%02d" acc_n) rows,
       List.assoc_opt (Fmt.str "e10 group-commit-only:batch=%02d" acc_n) rows )
   with
   | Some s, Some c when c < s ->
       Fmt.pr
         "@.acceptance: group commit of a conflict-free %d-request staged \
          batch (%.1f us) beats %d sequential Engine.apply calls (%.1f us): \
          %.2fx.@."
         acc_n (c /. 1e3) acc_n (s /. 1e3) (s /. c)
   | Some s, Some c ->
       Fmt.pr
         "@.ACCEPTANCE FAILED: group commit %.1f us vs sequential %.1f us@."
         (c /. 1e3) (s /. 1e3)
   | _ -> ());
  (* Paranoid-mode cross-check (acceptance), accept side: a merged-delta
     group commit must accept what sequential application accepts, and
     both must land on the same database. Paranoid validation
     additionally cross-checks the incremental checker against a full
     sweep inside each path, raising Divergence on any disagreement. *)
  let n = if !quick then 8 else 32 in
  let items = batch ~n ~colliding:0 in
  let seq_db =
    sequential ~validation:Vo_core.Global_validation.Paranoid db
      (List.map fst items)
  in
  let grp_db = group_serve ~validation:Vo_core.Global_validation.Paranoid db items in
  if not (Database.equal seq_db grp_db) then
    failwith "E10 cross-check: group commit diverges from sequential apply";
  (* Reject side: a batch whose last member violates the structural
     model (dropping a department every course references) must be
     rejected by the merged-delta pass with the same culprit sequential
     validation identifies. *)
  let bad_staged =
    let ops = [ Op.Delete ("DEPARTMENT", [ Value.Str "Computer Science" ]) ] in
    match Transaction.run_delta db ops with
    | Transaction.Rolled_back { reason; _ }, _ -> failwith reason
    | Transaction.Committed candidate, delta ->
        {
          Vo_core.Engine.request =
            Vo_core.Request.delete (Workloads.course_instance db 1);
          request_kind = "raw";
          object_name = "omega";
          ops;
          delta;
          reads = Delta.footprint delta;
          base_version = 0;
          base_db = db;
          candidate;
        }
  in
  let good = List.map (fun (r, _) -> stage1 db r) (batch ~n:4 ~colliding:0) in
  (match
     Vo_core.Engine.commit_group
       ~validation:Vo_core.Global_validation.Paranoid graph db
       (good @ [ bad_staged ])
   with
  | Ok _ -> failwith "E10 cross-check: invalid batch was accepted"
  | Error (Vo_core.Engine.Group_validation_failed { culprit = Some 4; _ }) -> ()
  | Error r ->
      failwith
        (Fmt.str "E10 cross-check: wrong rejection: %s"
           (Vo_core.Engine.group_rejection_reason r)));
  Fmt.pr
    "@.Paranoid cross-check: group commit of %d conflict-free requests \
     equals %d sequential applies (same final database, merged-delta \
     validation agrees with full sweep), and an invalid batch is \
     rejected with the culprit sequential replay identifies.@."
    n n

(* --- E11: durable commit journal ------------------------------------- *)

let e11 () =
  section "E11: durable commit journal: append, replay, recover, rotate";
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "penguin-bench-e11-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let or_fail = function
    | Ok v -> v
    | Error e -> failwith (Penguin.Error.to_string e)
  in
  let ws = Penguin.University.workspace () in
  let base = Penguin.Workspace.version ws in
  (* A representative single-commit record: one grade update, flipping
     between two values so any dense run of entries replays cleanly. *)
  let entry v =
    let new_g, old_g =
      if (v - base) mod 2 = 1 then "A-", "B+" else "B+", "A-"
    in
    let before =
      Tuple.make
        [ "course_id", Value.Str "CS345"; "pid", Value.Int 2; "grade", Value.Str old_g ]
    in
    let after = Tuple.set before "grade" (Value.Str new_g) in
    let d =
      Delta.record Delta.empty ~rel:"GRADES"
        ~key:[ Value.Str "CS345"; Value.Int 2 ]
        ~old_image:(Some before) ~new_image:(Some after)
    in
    {
      Penguin.Commit_log.version = v;
      kind = "bench edit";
      change = Penguin.Commit_log.Delta d;
    }
  in
  let fill t n =
    or_fail (Penguin.Journal.initialize t ~base);
    for i = 1 to n do
      or_fail (Penguin.Journal.append t ~sync:false [ entry (base + i) ])
    done
  in
  let lengths = if !quick then [ 16 ] else [ 16; 64; 256 ] in
  let append_t = Penguin.Journal.create (Filename.concat dir "append.journal") in
  or_fail (Penguin.Journal.initialize append_t ~base);
  let append_test ~sync name =
    Test.make ~name
      (stage (fun () ->
           or_fail (Penguin.Journal.append append_t ~sync [ entry (base + 1) ])))
  in
  let replay_test n =
    let t = Penguin.Journal.create (Filename.concat dir (Fmt.str "replay-%d.journal" n)) in
    fill t n;
    Test.make ~name:(Fmt.str "replay:len=%03d" n)
      (stage (fun () ->
           match Penguin.Journal.replay t with
           | Ok (Some r) -> r
           | Ok None -> failwith "journal missing"
           | Error e -> failwith (Penguin.Error.to_string e)))
  in
  (* Full recovery: snapshot load + replay + delta application + the
     incremental integrity cross-check, per journal length. *)
  let recover_test n =
    let store = Filename.concat dir (Fmt.str "store-%d.pgn" n) in
    or_fail (Penguin.Store.save_file ws store);
    fill (Penguin.Journal.create (Penguin.Journal.journal_path store)) n;
    Test.make ~name:(Fmt.str "open-store:len=%03d" n)
      (stage (fun () -> or_fail (Penguin.Recovery.open_store store)))
  in
  let snapshot = Penguin.Store.save ws in
  let rotate_t = Penguin.Journal.create (Filename.concat dir "rotate.journal") in
  or_fail (Penguin.Journal.initialize rotate_t ~base);
  let rotate_test =
    Test.make ~name:"rotate:university"
      (stage (fun () ->
           or_fail
             (Penguin.Journal.rotate rotate_t
                ~snapshot_path:(Filename.concat dir "rotate.pgn")
                ~snapshot ~base)))
  in
  let rows =
    run_group "e11"
      (append_test ~sync:false "append:sync=off"
      :: append_test ~sync:true "append:sync=on"
      :: rotate_test
      :: (List.map replay_test lengths @ List.map recover_test lengths))
  in
  (match
     ( List.assoc_opt "e11 append:sync=on" rows,
       List.assoc_opt "e11 append:sync=off" rows )
   with
  | Some on, Some off ->
      Fmt.pr
        "@.durability point: fsync'd append %.1f us vs buffered %.1f us \
         (%.1fx) — the price of surviving a crash.@."
        (on /. 1e3) (off /. 1e3) (on /. off)
  | _ -> ());
  let len = List.fold_left max 1 lengths in
  (match
     ( List.assoc_opt (Fmt.str "e11 replay:len=%03d" len) rows,
       List.assoc_opt (Fmt.str "e11 open-store:len=%03d" len) rows )
   with
  | Some r, Some o ->
      Fmt.pr
        "recovery at %d records: parse %.1f us, full open-store (apply + \
         integrity cross-check) %.1f us (%.2f us/record).@."
        len (r /. 1e3) (o /. 1e3)
        (o /. 1e3 /. float_of_int len)
  | _ -> ())

(* --- E12: observability overhead -------------------------------------- *)

let e12 () =
  section "E12: observability overhead on the commit path";
  let graph = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let spec = Penguin.University.omega_translator in
  let n = 8 in
  let db = Workloads.courses_db n in
  let staged =
    List.map
      (fun r ->
        match Vo_core.Engine.stage graph db omega spec r with
        | Ok s -> s
        | Error e -> failwith (Vo_core.Engine.stage_error_reason e))
      (List.init n (fun j ->
           Workloads.grade_change_request db ~course:(j + 1) ~tag:j))
  in
  let commit () =
    match Vo_core.Engine.commit_group graph db staged with
    | Ok (db, _) -> db
    | Error r -> failwith (Vo_core.Engine.group_rejection_reason r)
  in
  (* Each test re-establishes its obs configuration on every run: the
     mode switch is two stores, negligible against the us-scale path,
     and it keeps the measurement correct whatever order bechamel runs
     the tests in. *)
  let ring = Obs.Trace.Ring.create 4096 in
  let with_mode ~metrics ~trace f () =
    if metrics then Obs.Metrics.enable () else Obs.Metrics.disable ();
    Obs.Trace.set_sink
      (if trace then Some (Obs.Trace.Ring.sink ring) else None);
    f ()
  in
  (* Primitive costs, amortized over 1000 iterations so the mode-switch
     wrapper disappears from the per-op figure. *)
  let c = Obs.Metrics.counter ~help:"E12 probe" "e12.counter" in
  let h = Obs.Metrics.histogram ~help:"E12 probe" "e12.histogram" in
  let x1000 f () = for _ = 1 to 1000 do f () done in
  let rows =
    run_group "e12"
      [
        Test.make ~name:"commit:obs-off"
          (stage (with_mode ~metrics:false ~trace:false commit));
        Test.make ~name:"commit:metrics-on"
          (stage (with_mode ~metrics:true ~trace:false commit));
        Test.make ~name:"commit:metrics+trace"
          (stage (with_mode ~metrics:true ~trace:true commit));
        Test.make ~name:"counter-incr-x1000:disabled"
          (stage
             (with_mode ~metrics:false ~trace:false
                (x1000 (fun () -> Obs.Metrics.Counter.incr c))));
        Test.make ~name:"counter-incr-x1000:enabled"
          (stage
             (with_mode ~metrics:true ~trace:false
                (x1000 (fun () -> Obs.Metrics.Counter.incr c))));
        Test.make ~name:"histogram-observe-x1000:disabled"
          (stage
             (with_mode ~metrics:false ~trace:false
                (x1000 (fun () -> Obs.Metrics.Histogram.observe h 4096.))));
        Test.make ~name:"histogram-observe-x1000:enabled"
          (stage
             (with_mode ~metrics:true ~trace:false
                (x1000 (fun () -> Obs.Metrics.Histogram.observe h 4096.))));
        Test.make ~name:"span-x1000:no-sink"
          (stage
             (with_mode ~metrics:false ~trace:false
                (x1000 (fun () -> Obs.Trace.with_span "e12" ignore))));
        Test.make ~name:"span-x1000:ring-sink"
          (stage
             (with_mode ~metrics:false ~trace:true
                (x1000 (fun () -> Obs.Trace.with_span "e12" ignore))));
      ]
  in
  (* e12 must not decide the obs configuration of whatever runs next. *)
  Obs.Metrics.enable ();
  Obs.Trace.set_sink None;
  let t name = List.assoc_opt ("e12 " ^ name) rows in
  (match t "commit:obs-off", t "commit:metrics-on", t "commit:metrics+trace" with
  | Some off, Some on, Some tr ->
      Fmt.pr
        "@.measured commit path (batch %d): obs off %.1f us, metrics on \
         %.1f us (%+.1f%%), metrics+trace %.1f us (%+.1f%%).@."
        n (off /. 1e3) (on /. 1e3)
        (100. *. (on -. off) /. off)
        (tr /. 1e3)
        (100. *. (tr -. off) /. off)
  | _ -> ());
  (* The acceptance figure is derived from the primitive branch costs
     rather than the difference of two noisy commit measurements: count
     the instrumentation touches one disabled-mode commit pays and
     price them at the measured disabled per-op cost. Touch counts for
     a batch of n: 2 spans and 2 timed histograms (commit_group,
     global_check), 2 result counters, and ~3 pruned-connection-check
     counter touches per update inside check_delta. *)
  match
    ( t "commit:obs-off",
      t "counter-incr-x1000:disabled",
      t "histogram-observe-x1000:disabled",
      t "span-x1000:no-sink" )
  with
  | Some off, Some c1000, Some h1000, Some s1000 ->
      let branch = c1000 /. 1000. in
      let observe = h1000 /. 1000. in
      let span = s1000 /. 1000. in
      let est =
        (float_of_int (2 + (3 * n)) *. branch)
        +. (2. *. span) +. (2. *. observe)
      in
      let pct = 100. *. est /. off in
      Fmt.pr
        "@.disabled-mode primitives: counter %.2f ns, histogram %.2f ns, \
         span %.2f ns per touch.@."
        branch observe span;
      if pct < 5. then
        Fmt.pr
          "acceptance: disabled instrumentation costs ~%.0f ns of a %.1f us \
           commit = %.2f%% (< 5%%).@."
          est (off /. 1e3) pct
      else
        Fmt.pr
          "ACCEPTANCE FAILED: disabled instrumentation estimated at %.2f%% \
           of the commit path (>= 5%%)@."
          pct
  | _ -> ()

(* --- E13: resilience overhead on the fault-free commit path ----------- *)

let e13 () =
  section "E13: resilience overhead on the fault-free commit path";
  let module R = Penguin.Resilience in
  let graph = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let spec = Penguin.University.omega_translator in
  let n = 8 in
  let db = Workloads.courses_db n in
  let staged =
    List.map
      (fun r ->
        match Vo_core.Engine.stage graph db omega spec r with
        | Ok s -> s
        | Error e -> failwith (Vo_core.Engine.stage_error_reason e))
      (List.init n (fun j ->
           Workloads.grade_change_request db ~course:(j + 1) ~tag:j))
  in
  let commit () =
    match Vo_core.Engine.commit_group graph db staged with
    | Ok (db, _) -> Ok db
    | Error r ->
        Error (Penguin.Error.invalid (Vo_core.Engine.group_rejection_reason r))
  in
  let or_raise = function
    | Ok v -> v
    | Error e -> failwith (Penguin.Error.to_string e)
  in
  (* What serving actually pays per commit when nothing is wrong: the
     retry wrapper takes the happy path (one attempt, no sleep) and the
     deadline is a clock read and a compare. *)
  let wrapped () =
    let deadline_ns = Obs.Metrics.now_ns () +. 30e9 in
    or_raise (R.retry ~deadline_ns ~label:"e13" commit)
  in
  let breaker = R.Breaker.create ~label:"e13" () in
  let x1000 f () = for _ = 1 to 1000 do f () done in
  let rows =
    run_group "e13"
      [
        Test.make ~name:"commit:bare" (stage (fun () -> or_raise (commit ())));
        Test.make ~name:"commit:retry-wrapped" (stage wrapped);
        Test.make ~name:"retry-ok-x1000"
          (stage (x1000 (fun () -> ignore (R.retry (fun () -> Ok ())))));
        Test.make ~name:"retry-ok-deadline-x1000"
          (stage
             (x1000 (fun () ->
                  ignore (R.retry ~deadline_ns:max_float (fun () -> Ok ())))));
        Test.make ~name:"breaker-protect-ok-x1000"
          (stage
             (x1000 (fun () -> ignore (R.Breaker.protect breaker (fun () -> Ok ())))));
        Test.make ~name:"backoff-schedule"
          (stage (fun () -> R.Policy.schedule R.Policy.default));
      ]
  in
  let t name = List.assoc_opt ("e13 " ^ name) rows in
  (match t "commit:bare", t "commit:retry-wrapped" with
  | Some bare, Some wrapped ->
      Fmt.pr
        "@.measured commit path (batch %d): bare %.1f us, retry+deadline \
         wrapped %.1f us (%+.1f%%).@."
        n (bare /. 1e3) (wrapped /. 1e3)
        (100. *. (wrapped -. bare) /. bare)
  | _ -> ());
  (* The acceptance figure is derived from the amortized wrapper cost
     rather than the difference of two noisy commit measurements (the
     same approach as E12): one fault-free commit pays exactly one
     deadline-carrying retry wrap. *)
  match t "commit:bare", t "retry-ok-deadline-x1000" with
  | Some bare, Some w1000 ->
      let per_wrap = w1000 /. 1000. in
      let pct = 100. *. per_wrap /. bare in
      if pct < 2. then
        Fmt.pr
          "acceptance: the fault-free retry/deadline wrapper costs %.0f ns \
           of a %.1f us batch-%d commit = %.2f%% (< 2%%).@."
          per_wrap (bare /. 1e3) n pct
      else
        Fmt.pr
          "ACCEPTANCE FAILED: retry/deadline wrapper at %.2f%% of the \
           batch-%d commit path (>= 2%%)@."
          pct n
  | _ -> ()

(* --- ablation: op-list translation vs direct application ------------- *)

(* --- E14: materialized view-object cache ----------------------------- *)

let e14 () =
  section "E14: materialized view-object cache (DESIGN.md section 5.6)";
  let omega = Penguin.University.omega in
  let mk_cache fanout =
    let db = Workloads.enrollment_db fanout in
    let cache = Cache.create Penguin.University.graph ~db in
    Cache.register cache omega;
    Cache.warm cache;
    db, cache
  in
  let db256, cache256 = mk_cache 256 in
  let db16, cache16 = mk_cache 16 in
  (* A forward/backward pair of single-tuple grade deltas: each run
     patches the cache twice and lands back on the state it started
     from, so one patch costs half the reported time. *)
  let patch_roundtrip cache db course pid =
    let r = Database.relation_exn db "GRADES" in
    let t0 =
      match
        Relation.lookup_eq r
          [ "pid", Value.Int pid; "course_id", Value.Str course ]
      with
      | [ t ] -> t
      | l -> failwith (Fmt.str "expected 1 grade, got %d" (List.length l))
    in
    let t1 = Tuple.set t0 "grade" (Value.Str "Z+") in
    let key = Relation.key_of r t0 in
    let fwd =
      Delta.record Delta.empty ~rel:"GRADES" ~key ~old_image:(Some t0)
        ~new_image:(Some t1)
    in
    let back =
      Delta.record Delta.empty ~rel:"GRADES" ~key ~old_image:(Some t1)
        ~new_image:(Some t0)
    in
    let db' =
      match Database.apply_delta db fwd with
      | Ok db -> db
      | Error e -> failwith (Database.error_to_string e)
    in
    fun () ->
      Cache.apply_delta cache ~post:db' fwd;
      Cache.apply_delta cache ~post:db back
  in
  ignore
    (run_group "e14"
       [
         (* cold = what every read pays without the cache *)
         Test.make ~name:"cold:instantiate,fanout=256"
           (stage (fun () -> Instantiate.instantiate db256 omega));
         Test.make ~name:"warm-hit:fanout=256"
           (stage (fun () -> Cache.instances cache256 "omega"));
         (* patching the big entry costs its own fanout... *)
         Test.make ~name:"patch-roundtrip:bench1,fanout=256"
           (stage (patch_roundtrip cache256 db256 "BENCH1" 1001));
         (* ...while patching a small entry is flat in database size:
            CS345 keeps its 2 grades as BENCH1's enrollment inflates
            GRADES/STUDENT 16x between these two runs. *)
         Test.make ~name:"patch-roundtrip:cs345,dbsize=16"
           (stage (patch_roundtrip cache16 db16 "CS345" 2));
         Test.make ~name:"patch-roundtrip:cs345,dbsize=256"
           (stage (patch_roundtrip cache256 db256 "CS345" 2));
       ])

let ablation () =
  section "Ablation: translate / apply split (DESIGN.md section 5.1)";
  let g = Penguin.University.graph in
  let omega = Penguin.University.omega in
  let db = Penguin.University.seeded_db () in
  let spec = Penguin.University.omega_translator in
  let old_i = Penguin.University.cs345_instance db in
  let new_i = Penguin.University.ees345_replacement old_i in
  let request = Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i in
  let ops =
    match Vo_core.Engine.translate g db omega spec request with
    | Ok ops -> ops
    | Error e -> failwith e
  in
  ignore
    (run_group "ablation"
       [
         Test.make ~name:"translate-only" (stage (fun () ->
             Vo_core.Engine.translate g db omega spec request));
         Test.make ~name:"apply-only" (stage (fun () -> Transaction.run db ops));
         Test.make ~name:"consistency-check-only"
           (stage (fun () -> Structural.Integrity.check g db));
         Test.make ~name:"full-engine" (stage (fun () ->
             Vo_core.Engine.apply g db omega spec request));
       ])

(* --- surface layers: OQL, the update language, persistence ----------- *)

let surfaces () =
  section "Surface layers: query language, update language, persistence";
  let omega = Penguin.University.omega in
  let db = Penguin.University.seeded_db () in
  let ws = Penguin.University.workspace () in
  let query_text = "level = 'grad' and count(STUDENT#2) < 5" in
  let saved = Penguin.Store.save ws in
  let saved_defs = Penguin.Store.save ~include_data:false ws in
  Fmt.pr "@.workspace document: %d bytes with data, %d definition-only@."
    (String.length saved) (String.length saved_defs);
  ignore
    (run_group "surfaces"
       [
         Test.make ~name:"oql:parse" (stage (fun () -> Oql.parse omega query_text));
         Test.make ~name:"oql:parse+run" (stage (fun () -> Oql.run db omega query_text));
         Test.make ~name:"upql:grade-change"
           (stage (fun () ->
                Penguin.Upql.apply ws ~object_name:"omega"
                  "set GRADES[pid = 1] grade = 'A+' where course_id = 'CS345'"));
         Test.make ~name:"upql:batch-delete"
           (stage (fun () ->
                Penguin.Upql.apply ws ~object_name:"omega"
                  "delete where level = 'undergrad'"));
         Test.make ~name:"store:save" (stage (fun () -> Penguin.Store.save ws));
         Test.make ~name:"store:save-definitions-only"
           (stage (fun () -> Penguin.Store.save ~include_data:false ws));
         Test.make ~name:"store:load" (stage (fun () -> Penguin.Store.load saved));
         Test.make ~name:"json:figure4-instance"
           (stage
              (let i = Penguin.University.cs345_instance db in
               fun () -> Penguin.Json_export.instance omega i));
         Test.make ~name:"sql:group-by"
           (stage (fun () ->
                Sql.run db
                  "SELECT dept_name, count(*) AS n FROM COURSES GROUP BY \
                   dept_name ORDER BY n DESC"));
       ])

(* --- E15: sharded engine — commits/sec vs domains ---------------------- *)

let e15 () =
  section "E15: sharded engine by dependency island (DESIGN.md section 5.7)";
  let islands = 8 in
  let rows = 4 and fanout = if !quick then 8 else 32 in
  let per_client = if !quick then 4 else 16 in
  let batch = islands * per_client in
  (* One client domain per island, each alternating a pre-derived
     forward/backward replacement on its island's object — every commit
     is a real edit and any even count restores the store. With
     [cross_every] = m > 0, every m-th pair goes through the island's
     risky REF object instead (bounce + coordinator). *)
  let run_batch eng specs ~cross_every =
    let clients =
      List.map
        (fun (obj, (fwd, back), cross) ->
          Domain.spawn (fun () ->
              for j = 0 to (per_client / 2) - 1 do
                let name, (f, b) =
                  match cross with
                  | Some (cname, cpair)
                    when cross_every > 0 && j mod cross_every = 0 ->
                      cname, cpair
                  | _ -> obj, (fwd, back)
                in
                let commit r =
                  let o = Penguin.Sharded.update eng name r in
                  if not (Transaction.is_committed o.Vo_core.Engine.result)
                  then
                    failwith
                      (Fmt.str "E15: %s rejected: %a" name
                         Vo_core.Engine.pp_outcome o)
                in
                commit f;
                commit b
              done))
        specs
    in
    List.iter Domain.join clients
  in
  let specs_of ws ~cross =
    List.init islands (fun k ->
        let isl = Fmt.str "isl%d" k in
        ( isl,
          Workloads.flip_pair ws ~object_name:isl
            ~label:(Workloads.island_name k "PIV")
            ~attr:"val",
          if cross then
            let r = Fmt.str "ref%d" k in
            Some
              ( r,
                Workloads.flip_pair ws ~object_name:r
                  ~label:(Workloads.island_name k "REF")
                  ~attr:"note" )
          else None ))
  in
  (* Sweep 1: disjoint islands, domains 1/2/4/8 — pure lane parallelism. *)
  let ws = Workloads.islands_workspace ~islands ~rows ~fanout () in
  let specs = specs_of ws ~cross:false in
  let sweep = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let engines =
    List.map (fun d -> d, Penguin.Sharded.create ~domains:d ws) sweep
  in
  let rows_t =
    run_group "shard.throughput"
      (List.map
         (fun (d, eng) ->
           Test.make
             ~name:(Fmt.str "batch=%03d:domains=%d" batch d)
             (stage (fun () -> run_batch eng specs ~cross_every:0)))
         engines)
  in
  List.iter (fun (_, eng) -> Penguin.Sharded.shutdown eng) engines;
  let ns_at d =
    List.assoc_opt
      (Fmt.str "shard.throughput batch=%03d:domains=%d" batch d)
      rows_t
  in
  let cps ns = float_of_int batch *. 1e9 /. ns in
  let cores = Domain.recommended_domain_count () in
  (match (ns_at 1, ns_at 4) with
  | Some n1, Some n4 when Float.is_finite n1 && Float.is_finite n4 ->
      let speedup = n1 /. n4 in
      Fmt.pr
        "@.E15 acceptance: %.0f commits/sec at 1 domain, %.0f at 4 — %.2fx \
         (target >= 2.5x) %s@."
        (cps n1) (cps n4) speedup
        (if speedup >= 2.5 then "PASS"
         else if cores < 4 then
           Fmt.str "SKIP (host has %d core(s); scaling needs >= 4)" cores
         else "FAIL")
  | _ ->
      Option.iter
        (fun n1 ->
          Option.iter
            (fun n2 ->
              Fmt.pr
                "@.E15 (quick): %.0f commits/sec at 1 domain, %.0f at 2 \
                 (%.2fx)@."
                (cps n1) (cps n2) (n1 /. n2))
            (ns_at 2))
        (ns_at 1));
  (* Sweep 2: stitched islands, fixed pool — throughput vs the fraction
     of commits that must serialize through the coordinator. *)
  let wsx = Workloads.islands_workspace ~cross:true ~islands ~rows ~fanout () in
  let specsx = specs_of wsx ~cross:true in
  let pool = if !quick then 2 else 4 in
  let engx = Penguin.Sharded.create ~domains:pool wsx in
  let ratios = if !quick then [ 0; 4 ] else [ 0; 8; 4; 2 ] in
  ignore
    (run_group "shard.cross"
       (List.map
          (fun every ->
            let pct = if every = 0 then 0 else 100 / every in
            Test.make
              ~name:(Fmt.str "domains=%d:cross=%02d%%" pool pct)
              (stage (fun () -> run_batch engx specsx ~cross_every:every)))
          ratios));
  Penguin.Sharded.shutdown engx

(* --- E16: journal-shipping replication --------------------------------- *)

let e16 () =
  section "E16: journal-shipping replication (DESIGN.md section 5.8)";
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "penguin-bench-e16-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let or_fail = function
    | Ok v -> v
    | Error e -> failwith (Penguin.Error.to_string e)
  in
  let io = Penguin.Fsio.default in
  let rm p = match io.Penguin.Fsio.remove p with Ok () | Error _ -> () in
  let ws = Penguin.University.workspace () in
  let base = Penguin.Workspace.version ws in
  (* The same representative commit record E11 journals: one grade
     update, flipping between two values so dense runs replay cleanly —
     here it must also pass the replica's validate-before-append. *)
  let entry v =
    let new_g, old_g =
      if (v - base) mod 2 = 1 then "A-", "B+" else "B+", "A-"
    in
    let before =
      Tuple.make
        [ "course_id", Value.Str "CS345"; "pid", Value.Int 2;
          "grade", Value.Str old_g ]
    in
    let after = Tuple.set before "grade" (Value.Str new_g) in
    let d =
      Delta.record Delta.empty ~rel:"GRADES"
        ~key:[ Value.Str "CS345"; Value.Int 2 ]
        ~old_image:(Some before) ~new_image:(Some after)
    in
    {
      Penguin.Commit_log.version = v;
      kind = "bench edit";
      change = Penguin.Commit_log.Delta d;
    }
  in
  let make_leader n =
    let store = Filename.concat dir (Fmt.str "leader-%d.pgn" n) in
    or_fail (Penguin.Store.save_file ws store);
    let t = Penguin.Journal.create (Penguin.Journal.journal_path store) in
    or_fail (Penguin.Journal.initialize t ~base);
    for i = 1 to n do
      or_fail (Penguin.Journal.append t ~sync:false [ entry (base + i) ])
    done;
    store
  in
  let lengths = if !quick then [ 16 ] else [ 16; 64; 256 ] in
  (* Catch-up: bootstrap a fresh follower from the leader snapshot and
     tail the whole journal through verify → validate → own-journal →
     cache sync. The follower's files are deleted each run so every
     iteration pays the full cold catch-up. *)
  let tail_test n =
    let leader = make_leader n in
    let target = Filename.concat dir (Fmt.str "tail-%d.pgn" n) in
    Test.make ~name:(Fmt.str "catch-up:len=%03d" n)
      (stage (fun () ->
           rm target;
           rm (Penguin.Journal.journal_path target);
           let r =
             or_fail
               (Penguin.Replica.create
                  ~feed:(Penguin.Replica.file_feed leader)
                  ~target ())
           in
           or_fail (Penguin.Replica.poll_until_idle r)))
  in
  ignore (run_group "replica.tail" (List.map tail_test lengths));
  (* Follower reads vs leader reads, both through a warm view-object
     cache — the acceptance gate: a follower read within 2x of the
     leader's. *)
  let leader = make_leader 8 in
  let lws, _ = or_fail (Penguin.Recovery.open_store leader) in
  let lcache = Penguin.Workspace.attach_cache lws in
  let condition = "course_id = 'CS345'" in
  let read_leader () =
    match Viewobject.Cache.oql lcache "omega" condition with
    | Ok is -> is
    | Error e -> failwith e
  in
  let follower_target = Filename.concat dir "read-follower.pgn" in
  let repl =
    or_fail
      (Penguin.Replica.create
         ~feed:(Penguin.Replica.file_feed leader)
         ~target:follower_target ())
  in
  let _ = or_fail (Penguin.Replica.poll_until_idle repl) in
  let read_follower () =
    match Penguin.Replica.oql repl "omega" condition with
    | Ok is -> is
    | Error e -> failwith e
  in
  ignore (read_leader ());
  ignore (read_follower ());
  let rows =
    run_group "replica.read"
      [
        Test.make ~name:"leader:oql-warm" (stage read_leader);
        Test.make ~name:"follower:oql-warm" (stage read_follower);
      ]
  in
  (match
     ( List.assoc_opt "replica.read leader:oql-warm" rows,
       List.assoc_opt "replica.read follower:oql-warm" rows )
   with
  | Some l, Some f when Float.is_finite l && Float.is_finite f ->
      Fmt.pr
        "@.E16 acceptance: leader read %.2f us, follower read %.2f us — \
         %.2fx (target <= 2x) %s@."
        (l /. 1e3) (f /. 1e3) (f /. l)
        (if f <= 2. *. l then "PASS" else "FAIL")
  | _ -> ());
  (* Failover: restore the caught-up follower's files and promote —
     repair-open from the last durable record, rotate into a fresh
     snapshot at the next epoch, serve a first read. What a failover
     actually costs, end to end. *)
  let snap_bytes =
    match or_fail (io.Penguin.Fsio.read follower_target) with
    | Some c -> c
    | None -> failwith "E16: follower snapshot missing"
  in
  let jnl_bytes =
    match
      or_fail
        (io.Penguin.Fsio.read (Penguin.Journal.journal_path follower_target))
    with
    | Some c -> c
    | None -> failwith "E16: follower journal missing"
  in
  let scratch = Filename.concat dir "failover.pgn" in
  let failover_test =
    Test.make ~name:"promote+first-read"
      (stage (fun () ->
           or_fail (Penguin.Fsio.atomic_write io ~path:scratch snap_bytes);
           or_fail
             (io.Penguin.Fsio.write
                ~path:(Penguin.Journal.journal_path scratch)
                ~append:false jnl_bytes);
           let pws, _epoch = or_fail (Penguin.Replica.promote_store scratch) in
           let cache = Penguin.Workspace.attach_cache pws in
           match Viewobject.Cache.oql cache "omega" condition with
           | Ok is -> is
           | Error e -> failwith e))
  in
  ignore (run_group "replica.failover" [ failover_test ])

(* --- E17: unix-socket serving, pipelined group commit ------------------- *)

let e17 () =
  section "E17: group-commit serving (DESIGN.md section 5.9)";
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "penguin-bench-e17-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let or_fail = function
    | Ok v -> v
    | Error e -> failwith (Penguin.Error.to_string e)
  in
  let clients = 16 in
  let rounds = if !quick then 8 else 25 in
  (* The load store: the university fixture plus one disjoint
     course/student/grade triple per client, so every client owns a
     course and a window's worth of grade edits batches without
     conflicts — the same seed [penguin client seed] writes. *)
  let seed_store path =
    let ins rel bindings db =
      match Database.insert db rel (Tuple.make bindings) with
      | Ok db -> db
      | Error e -> failwith (Database.error_to_string e)
    in
    let rec add db i =
      if i > clients then db
      else
        let course = Fmt.str "BENCH%03d" i in
        let pid = 2000 + i in
        db
        |> ins "COURSES"
             [ "course_id", Value.Str course;
               "title", Value.Str (Fmt.str "Bench %d" i);
               "units", Value.Int 3; "level", Value.Str "grad";
               "dept_name", Value.Str "Computer Science" ]
        |> ins "PEOPLE"
             [ "pid", Value.Int pid; "name", Value.Str (Fmt.str "S%d" i);
               "dept_name", Value.Str "Computer Science" ]
        |> ins "STUDENT"
             [ "pid", Value.Int pid; "degree_program", Value.Str "MS CS";
               "year", Value.Int ((i mod 4) + 1) ]
        |> ins "GRADES"
             [ "course_id", Value.Str course; "pid", Value.Int pid;
               "grade", Value.Str "A" ]
        |> fun db -> add db (i + 1)
    in
    let ws = Penguin.University.workspace () in
    let ws = { ws with Penguin.Workspace.db = add ws.Penguin.Workspace.db 1 } in
    or_fail (Penguin.Store.save_file ws path)
  in
  (* A modeled barrier disk: every fsync pays a fixed 2 ms on top of the
     real one — a representative commodity-disk write barrier. On the
     NVMe this host (and CI) runs on, a real fsync is ~0.1 ms, below the
     serving stack's per-commit CPU, so the native sweep cannot show
     what group commit amortizes; the modeled sweep isolates it. The
     grouping mechanism under test is identical in both. *)
  let sync_delay_ns = 2_000_000. in
  let slow_io =
    let d = Penguin.Fsio.default in
    { d with
      Penguin.Fsio.sync =
        (fun path ->
          Unix.sleepf (sync_delay_ns /. 1e9);
          d.Penguin.Fsio.sync path) }
  in
  let start_server ?io name config =
    let store = Filename.concat dir (name ^ ".pgn") in
    seed_store store;
    let sock = Filename.concat dir (name ^ ".sock") in
    let dom =
      Domain.spawn (fun () -> Penguin.Server.serve ?io ~config ~store ~sock ())
    in
    let rec await n =
      if Sys.file_exists sock then ()
      else if n = 0 then failwith "E17: server socket never appeared"
      else (Unix.sleepf 0.02; await (n - 1))
    in
    await 250;
    sock, dom
  in
  let stop sock dom =
    let c = or_fail (Penguin.Client.connect ~sock) in
    (match Penguin.Client.shutdown c with Ok () | Error _ -> ());
    Penguin.Client.close c;
    ignore (Domain.join dom)
  in
  (* Open-loop driver: write every round's begin/queue/commit for every
     connection up front, then drain the acks. The server never waits on
     a client round-trip, so a window fills to the connection count (or
     the size cap) instead of to whatever one closed-loop round
     happened to deliver. The grade value varies per driver run and
     round — an edit that matches the stored value is a no-op the
     session would skip, and a skipped edit would ack without paying
     for a commit. *)
  let run = ref 0 in
  let drive sock =
    incr run;
    let conns =
      List.init clients (fun i ->
          i + 1, or_fail (Penguin.Client.connect ~sock))
    in
    for r = 1 to rounds do
      List.iter
        (fun (i, c) ->
          or_fail (Penguin.Client.send_begin c);
          or_fail
            (Penguin.Client.send_queue c ~object_name:"omega"
               (Fmt.str
                  "set GRADES[pid = %d] grade = \'X%dR%d\' where course_id = \
                   \'BENCH%03d\'"
                  (2000 + i) !run r i));
          or_fail (Penguin.Client.send_commit c))
        conns
    done;
    List.iter
      (fun (_, c) ->
        for _ = 1 to rounds do
          ignore (or_fail (Penguin.Client.recv_begin c));
          ignore (or_fail (Penguin.Client.recv_queue c));
          ignore (or_fail (Penguin.Client.recv_commit c))
        done;
        Penguin.Client.close c)
      conns
  in
  let per_drive = float_of_int (clients * rounds) in
  (* Throughput is hand-timed over whole drives (median of a few), one
     server alive at a time: a server is an event loop in a domain, and
     with several of them parked in [select] inside one OCaml process a
     bechamel run measures runtime synchronization, not serving. The
     recorded ns/op is per committed update. *)
  let single = { Penguin.Server.default_config with
                 flush_window = 1; eager_flush = false } in
  let grouped = Penguin.Server.default_config in
  let measure ?io fsname config =
    let sock, dom = start_server ?io fsname config in
    drive sock;
    let reps = if !quick then 3 else 5 in
    let samples =
      List.init reps (fun _ ->
          let t0 = Unix.gettimeofday () in
          drive sock;
          (Unix.gettimeofday () -. t0) *. 1e9 /. per_drive)
    in
    stop sock dom;
    List.nth (List.sort compare samples) ((reps - 1) / 2)
  in
  let configs =
    [ "window=001:native", "w001", None, single;
      "window=064:native", "w064", None, grouped;
      "window=001:sync=2ms", "w001s", Some slow_io, single;
      "window=064:sync=2ms", "w064s", Some slow_io, grouped ]
  in
  let rows =
    List.map
      (fun (name, fsname, io, config) -> name, measure ?io fsname config)
      configs
  in
  record_group "server.throughput" rows;
  let cps ns = 1e9 /. ns in
  let at name = List.assoc_opt name rows in
  (match at "window=001:native", at "window=064:native" with
  | Some n1, Some nn when Float.is_finite n1 && Float.is_finite nn ->
      Fmt.pr
        "@.E17 native disk: %.0f commits/sec at window=1, %.0f grouped — \
         %.2fx (fsync here is ~0.1 ms, below the per-commit CPU; see the \
         modeled disk for the amortization gate)@."
        (cps n1) (cps nn) (n1 /. nn)
  | _ -> ());
  (match at "window=001:sync=2ms", at "window=064:sync=2ms" with
  | Some n1, Some nn when Float.is_finite n1 && Float.is_finite nn ->
      Fmt.pr
        "@.E17 acceptance (2 ms barrier disk, %d clients): %.0f commits/sec \
         at window=1 (fsync per commit), %.0f grouped — %.2fx (target >= 3x) \
         %s@."
        clients (cps n1) (cps nn) (n1 /. nn)
        (if n1 /. nn >= 3. then "PASS" else "FAIL")
  | _ -> ());
  (* Reads through the serving path: a warm view-object oql over the
     wire (connect once, query per run) vs the same query against a
     local warm cache — what the socket hop costs. *)
  let sockr, domr = start_server "reads" grouped in
  let read_client = or_fail (Penguin.Client.connect ~sock:sockr) in
  let lws, _ =
    or_fail (Penguin.Recovery.open_store (Filename.concat dir "reads.pgn"))
  in
  let lcache = Penguin.Workspace.attach_cache lws in
  let condition = "course_id = \'BENCH001\'" in
  let read_wire () =
    match Penguin.Client.oql read_client ~object_name:"omega" condition with
    | Ok (n, _) -> n
    | Error e -> failwith (Penguin.Error.to_string e)
  in
  let read_local () =
    match Viewobject.Cache.oql lcache "omega" condition with
    | Ok is -> List.length is
    | Error e -> failwith e
  in
  ignore (read_wire ());
  ignore (read_local ());
  ignore
    (run_group "server.read"
       [
         Test.make ~name:"oql:wire-warm" (stage read_wire);
         Test.make ~name:"oql:local-warm" (stage read_local);
       ]);
  Penguin.Client.close read_client;
  stop sockr domr

let () =
  parse_argv ();
  (* Metrics stay on for the whole run (the --json document carries the
     registry; E12 prices the cost) — E12 toggles them locally. *)
  Obs.Metrics.enable ();
  Fmt.pr "PENGUIN benchmark harness — one experiment per paper artifact@.";
  Fmt.pr "(see DESIGN.md and EXPERIMENTS.md for the index)@.";
  want "e1" e1;
  want "e2_e3" e2_e3;
  want "e4" e4;
  want "e5" e5;
  want "e6" e6;
  want "e7" e7;
  want "e8" e8;
  want "e9" e9;
  want "e10" e10;
  want "e11" e11;
  want "e12" e12;
  want "e13" e13;
  want "e14" e14;
  want "e15" e15;
  want "e16" e16;
  want "e17" e17;
  want "ablation" ablation;
  want "surfaces" surfaces;
  Option.iter write_json !json_path;
  Fmt.pr "@.all benchmarks complete.@."
