(* The CI bench-regression gate driver:

     dune exec bench/compare.exe -- BASELINE CURRENT [--threshold R]

   Compares per-group median ns/op of CURRENT against BASELINE (both
   bench/main.exe --json documents) and exits non-zero when any group's
   median regressed beyond the threshold ratio or went missing. The
   default threshold is generous (2.5x) because CI runs in --quick mode
   on shared runners: the gate is meant to catch a real complexity or
   pathological-path regression, not scheduler jitter. *)

let usage = "usage: compare BASELINE CURRENT [--threshold RATIO]"

let read path =
  try
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Ok s
  with Sys_error e -> Error e

let () =
  let baseline_path = ref None and current_path = ref None in
  let threshold = ref 2.5 in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t > 1.0 ->
            threshold := t;
            parse rest
        | _ ->
            Fmt.epr "compare: bad threshold %s (need a ratio > 1)@." v;
            exit 2)
    | [ "--threshold" ] ->
        Fmt.epr "compare: --threshold requires a value@.";
        exit 2
    | arg :: rest ->
        (match !baseline_path, !current_path with
        | None, _ -> baseline_path := Some arg
        | Some _, None -> current_path := Some arg
        | Some _, Some _ ->
            Fmt.epr "compare: unexpected argument %s@.%s@." arg usage;
            exit 2);
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !baseline_path, !current_path with
  | Some bp, Some cp -> (
      let load what path =
        match Result.bind (read path) Bench_gate.parse with
        | Ok groups -> groups
        | Error e ->
            Fmt.epr "compare: %s %s: %s@." what path e;
            exit 2
      in
      let baseline = load "baseline" bp in
      let current = load "current run" cp in
      let verdicts = Bench_gate.compare ~threshold:!threshold ~baseline current in
      print_string (Bench_gate.report ~threshold:!threshold verdicts);
      if Bench_gate.failed verdicts then exit 1)
  | _ ->
      Fmt.epr "%s@." usage;
      exit 2
