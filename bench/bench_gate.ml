let ( let* ) = Result.bind

type group = {
  name : string;
  results : (string * float) list;
}

let parse content =
  let* doc = Obs.Json.parse content in
  let* groups =
    match Obs.Json.member "groups" doc with
    | Some (Obs.Json.Arr gs) -> Ok gs
    | Some _ -> Error "bench json: \"groups\" is not an array"
    | None -> Error "bench json: no \"groups\" field"
  in
  List.fold_left
    (fun acc g ->
      let* groups = acc in
      let* name =
        match Option.bind (Obs.Json.member "group" g) Obs.Json.to_str with
        | Some n -> Ok n
        | None -> Error "bench json: group without a \"group\" name"
      in
      let* rows =
        match Obs.Json.member "results" g with
        | Some (Obs.Json.Arr rs) -> Ok rs
        | _ -> Error (Fmt.str "bench json: group %s has no results array" name)
      in
      let* results =
        List.fold_left
          (fun acc r ->
            let* results = acc in
            let* n =
              match Option.bind (Obs.Json.member "name" r) Obs.Json.to_str with
              | Some n -> Ok n
              | None -> Error (Fmt.str "bench json: unnamed result in %s" name)
            in
            match Option.bind (Obs.Json.member "ns_per_op" r) Obs.Json.to_float with
            | Some ns when Float.is_finite ns -> Ok (results @ [ n, ns ])
            | _ -> Ok results (* null / non-finite: measurement failed, skip *))
          (Ok []) rows
      in
      Ok (groups @ [ { name; results } ]))
    (Ok []) groups

let median g =
  match List.filter Float.is_finite (List.map snd g.results) with
  | [] -> None
  | vs -> (
      let a = Array.of_list vs in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n mod 2 = 1 then Some a.(n / 2)
      else Some ((a.((n / 2) - 1) +. a.(n / 2)) /. 2.))

type status = Ok_s | Regressed | Missing | New

type verdict = {
  group_name : string;
  baseline_ns : float option;
  current_ns : float option;
  ratio : float option;
  status : status;
}

let compare ~threshold ~baseline current =
  let find name gs = List.find_opt (fun g -> g.name = name) gs in
  let of_baseline b =
    let baseline_ns = median b in
    let current_ns = Option.bind (find b.name current) (fun g -> Some g) in
    let current_ns = Option.bind current_ns median in
    match baseline_ns, current_ns with
    | _, None ->
        { group_name = b.name; baseline_ns; current_ns = None; ratio = None;
          status = Missing }
    | None, Some _ ->
        (* No usable baseline measurement: nothing to compare against,
           treat the group as new rather than inventing a ratio. *)
        { group_name = b.name; baseline_ns = None; current_ns; ratio = None;
          status = New }
    | Some bl, Some cur ->
        let ratio = cur /. bl in
        { group_name = b.name; baseline_ns; current_ns;
          ratio = Some ratio;
          status = (if ratio > threshold then Regressed else Ok_s) }
  in
  let news =
    List.filter_map
      (fun g ->
        if find g.name baseline <> None then None
        else
          Some
            { group_name = g.name; baseline_ns = None; current_ns = median g;
              ratio = None; status = New })
      current
  in
  List.map of_baseline baseline @ news

let failed verdicts =
  List.exists (fun v -> v.status = Regressed || v.status = Missing) verdicts

let pp_ns ppf = function
  | None -> Fmt.pf ppf "%10s" "-"
  | Some ns when ns < 1e3 -> Fmt.pf ppf "%7.0f ns" ns
  | Some ns when ns < 1e6 -> Fmt.pf ppf "%7.1f us" (ns /. 1e3)
  | Some ns -> Fmt.pf ppf "%7.2f ms" (ns /. 1e6)

let pp_verdict ppf v =
  let status =
    match v.status with
    | Ok_s -> "ok"
    | Regressed -> "REGRESSED"
    | Missing -> "MISSING"
    | New -> "new"
  in
  Fmt.pf ppf "%-12s %a %a %8s %s" v.group_name pp_ns v.baseline_ns pp_ns
    v.current_ns
    (match v.ratio with Some r -> Fmt.str "%.2fx" r | None -> "-")
    status

let report ~threshold verdicts =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Fmt.str "%-12s %10s %10s %8s %s\n" "group" "baseline" "current" "ratio"
       "status");
  List.iter
    (fun v -> Buffer.add_string b (Fmt.str "%a\n" pp_verdict v))
    verdicts;
  let bad =
    List.filter (fun v -> v.status = Regressed || v.status = Missing) verdicts
  in
  Buffer.add_string b
    (if bad = [] then
       Fmt.str "\nbench gate: PASS (%d group(s) within %.1fx of baseline)\n"
         (List.length
            (List.filter (fun v -> v.status = Ok_s) verdicts))
         threshold
     else
       Fmt.str "\nbench gate: FAIL — %d group(s) regressed or missing \
                (threshold %.1fx): %s\n"
         (List.length bad) threshold
         (String.concat ", " (List.map (fun v -> v.group_name) bad)));
  Buffer.contents b
