(** The benchmark-regression gate: pure comparison logic.

    CI runs [bench/main.exe --quick --json bench.json] and then
    [bench/compare.exe bench/baseline.json bench.json]; this module is
    the logic behind the comparison, kept free of I/O so the test suite
    can drive it against constructed documents (including an injected
    slowdown, proving the gate actually fails).

    The unit of comparison is the {e per-group median} ns/op: individual
    benchmarks are noisy in --quick mode (tiny measurement quotas on
    shared CI runners), but the median of a group's tests moving by more
    than the threshold means the group as a whole got slower. *)

type group = {
  name : string;
  results : (string * float) list;
      (** (test name, ns/op); non-finite entries are ignored. *)
}

val parse : string -> (group list, string) result
(** Parse a bench JSON document ([{"groups": [{"group": ...,
    "results": [{"name": ..., "ns_per_op": ...}]}], ...}]). Entries
    whose [ns_per_op] is null are dropped. *)

val median : group -> float option
(** Median ns/op over the group's finite results; [None] when empty. *)

type status =
  | Ok_s  (** within threshold (or faster) *)
  | Regressed  (** median slower than threshold × baseline *)
  | Missing  (** in the baseline but not the current run *)
  | New  (** in the current run but not the baseline (informational) *)

type verdict = {
  group_name : string;
  baseline_ns : float option;
  current_ns : float option;
  ratio : float option;  (** current / baseline, when both exist *)
  status : status;
}

val compare : threshold:float -> baseline:group list -> group list -> verdict list
(** One verdict per group name seen on either side, baseline order
    first. [threshold] is the allowed slowdown ratio (e.g. 2.5 means
    "fail when the median is more than 2.5x the baseline"). A group
    present in the baseline but absent (or empty) in the current run is
    [Missing] — a silently dropped benchmark must not pass the gate. *)

val failed : verdict list -> bool
(** True when any verdict is [Regressed] or [Missing]. *)

val pp_verdict : Format.formatter -> verdict -> unit

val report : threshold:float -> verdict list -> string
(** The full human-readable gate report, one verdict per line, with a
    pass/fail summary. *)
