(* Synthetic workload generators for the benchmark harness (EXPERIMENTS.md).

   All generators are deterministic: benchmarks must measure the
   algorithms, not the random-number generator. *)

open Relational
open Structural
open Viewobject

(* Connection indexes are built with the database ({!Schema_graph}), so
   every generator below hands them out by default. Rebuilding each
   relation from its bare tuples sheds them — the honest baseline for
   the E4 index ablation. *)
let strip_indexes db =
  List.fold_left
    (fun acc name ->
      let r = Database.relation_exn db name in
      let acc = Database.create_relation_exn acc (Relation.schema r) in
      Relation.fold
        (fun t acc ->
          match Database.insert acc name t with
          | Ok acc -> acc
          | Error e -> invalid_arg (Database.error_to_string e))
        r acc)
    Database.empty (Database.relation_names db)

(* --- chain schemas: R0 --* R1 --* ... --* R(n-1) --------------------- *)

let chain_relation i =
  let key = List.init (i + 1) (fun j -> Fmt.str "id%d" j) in
  let attributes =
    List.map Attribute.int key @ [ Attribute.str (Fmt.str "payload%d" i) ]
  in
  Schema.make_exn ~name:(Fmt.str "R%d" i) ~attributes ~key

let chain_graph n =
  let schemas = List.init n chain_relation in
  let conns =
    List.init (n - 1) (fun i ->
        let shared = List.init (i + 1) (fun j -> Fmt.str "id%d" j) in
        Connection.ownership (Fmt.str "R%d" i)
          (Fmt.str "R%d" (i + 1))
          ~on:(shared, shared))
  in
  Schema_graph.make_exn schemas conns

(* Star schema: one pivot referencing [n] dimension relations — used for
   dialog-size and metric sweeps. *)
let star_graph n =
  let dim i =
    Schema.make_exn ~name:(Fmt.str "D%d" i)
      ~attributes:[ Attribute.int (Fmt.str "d%d" i); Attribute.str "label" ]
      ~key:[ Fmt.str "d%d" i ]
  in
  let pivot =
    Schema.make_exn ~name:"PIVOT"
      ~attributes:
        (Attribute.int "pk" :: List.init n (fun i -> Attribute.int (Fmt.str "d%d" i)))
      ~key:[ "pk" ]
  in
  let conns =
    List.init n (fun i ->
        Connection.reference "PIVOT" (Fmt.str "D%d" i)
          ~on:([ Fmt.str "d%d" i ], [ Fmt.str "d%d" i ]))
  in
  Schema_graph.make_exn (pivot :: List.init n dim) conns

(* Populate a chain graph with [fanout] children per tuple down to the
   last level; returns the database and the full object instance rooted
   at R0's single tuple. *)
let populate_chain g ~depth ~fanout =
  let db = Schema_graph.create_database g in
  let rec insert_level db level key_prefix =
    if level >= depth then db
    else
      let indices = if level = 0 then [ 0 ] else List.init fanout (fun i -> i) in
      List.fold_left
        (fun db i ->
          let key = key_prefix @ [ i ] in
          let bindings =
            List.mapi (fun j v -> Fmt.str "id%d" j, Value.Int v) key
            @ [ Fmt.str "payload%d" level, Value.Str (Fmt.str "p%d" i) ]
          in
          let db =
            match Database.insert db (Fmt.str "R%d" level) (Tuple.make bindings) with
            | Ok db -> db
            | Error e -> invalid_arg (Database.error_to_string e)
          in
          insert_level db (level + 1) key)
        db indices
  in
  insert_level db 0 []

let chain_object g =
  match
    Viewobject.Generate.full (Metric.make ~threshold:0.01 ()) g ~name:"chain"
      ~pivot:"R0"
  with
  | Ok vo -> vo
  | Error e -> invalid_arg e

let chain_instance db vo =
  match Instantiate.instantiate db vo with
  | [ i ] -> i
  | l -> invalid_arg (Fmt.str "chain_instance: %d instances" (List.length l))

(* --- university with synthetic enrollment -------------------------- *)

(* A university database where course BENCH1 has [g] enrolled students. *)
let enrollment_db g =
  let db = Penguin.University.seeded_db () in
  let db =
    match
      Database.insert db "COURSES"
        (Tuple.make
           [ "course_id", Value.Str "BENCH1"; "title", Value.Str "Bench";
             "units", Value.Int 3; "level", Value.Str "grad";
             "dept_name", Value.Str "Computer Science" ])
    with
    | Ok db -> db
    | Error e -> invalid_arg (Database.error_to_string e)
  in
  let rec add db i =
    if i > g then db
    else
      let pid = 1000 + i in
      let ins rel bindings db =
        match Database.insert db rel (Tuple.make bindings) with
        | Ok db -> db
        | Error e -> invalid_arg (Database.error_to_string e)
      in
      let db =
        db
        |> ins "PEOPLE"
             [ "pid", Value.Int pid; "name", Value.Str (Fmt.str "S%d" i);
               "dept_name", Value.Str "Computer Science" ]
        |> ins "STUDENT"
             [ "pid", Value.Int pid; "degree_program", Value.Str "MS CS";
               "year", Value.Int ((i mod 4) + 1) ]
        |> ins "GRADES"
             [ "course_id", Value.Str "BENCH1"; "pid", Value.Int pid;
               "grade", Value.Str "A" ]
      in
      add db (i + 1)
  in
  add db 1

(* A university database where [n] curriculum rows reference CS345 —
   peninsula fix-up scaling for VO-R. *)
let curriculum_db n =
  let db = Penguin.University.seeded_db () in
  let rec add db i =
    if i > n then db
    else
      match
        Database.insert db "CURRICULUM"
          (Tuple.make
             [ "degree", Value.Str (Fmt.str "DEG%d" i);
               "course_id", Value.Str "CS345";
               "requirement", Value.Str "elective" ])
      with
      | Ok db -> add db (i + 1)
      | Error e -> invalid_arg (Database.error_to_string e)
  in
  add db 1

let bench1_instance db =
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" "BENCH1")
      db Penguin.University.omega
  with
  | [ i ] -> i
  | _ -> invalid_arg "bench1_instance"

(* --- E10: group-commit workload ------------------------------------ *)

(* A university database with [n] extra one-student courses
   BENCH001..BENCH<n>: course [i] has student pid 2000+i enrolled with
   grade "A". Requests on distinct courses touch disjoint instances, so
   a batch of them can be served one-at-a-time against the evolving
   state or staged together from one snapshot. *)
let courses_db n =
  let db = Penguin.University.seeded_db () in
  let ins rel bindings db =
    match Database.insert db rel (Tuple.make bindings) with
    | Ok db -> db
    | Error e -> invalid_arg (Database.error_to_string e)
  in
  let rec add db i =
    if i > n then db
    else
      let course = Fmt.str "BENCH%03d" i in
      let pid = 2000 + i in
      db
      |> ins "COURSES"
           [ "course_id", Value.Str course; "title", Value.Str (Fmt.str "Bench %d" i);
             "units", Value.Int 3; "level", Value.Str "grad";
             "dept_name", Value.Str "Computer Science" ]
      |> ins "PEOPLE"
           [ "pid", Value.Int pid; "name", Value.Str (Fmt.str "S%d" i);
             "dept_name", Value.Str "Computer Science" ]
      |> ins "STUDENT"
           [ "pid", Value.Int pid; "degree_program", Value.Str "MS CS";
             "year", Value.Int ((i mod 4) + 1) ]
      |> ins "GRADES"
           [ "course_id", Value.Str course; "pid", Value.Int pid;
             "grade", Value.Str "A" ]
      |> fun db -> add db (i + 1)
  in
  add db 1

let course_instance db i =
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" (Fmt.str "BENCH%03d" i))
      db Penguin.University.omega
  with
  | [ inst ] -> inst
  | l -> invalid_arg (Fmt.str "course_instance %d: %d instances" i (List.length l))

(* One grade change on course [course] (re-reading the instance from
   [db], so the request is fresh against it); [tag] disambiguates the
   new grade so retried requests stay distinguishable. *)
let grade_change_request db ~course ~tag =
  let inst = course_instance db course in
  match
    Vo_core.Request.partial_modify inst ~label:"GRADES"
      ~at:(Tuple.make [ "pid", Value.Int (2000 + course) ])
      ~f:(fun t -> Tuple.set t "grade" (Value.Str (Fmt.str "B%d" tag)))
  with
  | Ok r -> r
  | Error e -> invalid_arg e

(* A batch of [n] grade changes, request [j] on course [j+1] — pairwise
   disjoint — except the first [colliding] requests, all redirected to
   course 1: those write the same GRADES key and conflict pairwise. *)
let grade_change_requests db ~n ~colliding =
  List.init n (fun j ->
      grade_change_request db
        ~course:(if j < colliding then 1 else j + 1)
        ~tag:j)

(* --- flat-view counterpart for the E8 baseline --------------------- *)

(* The flat SPJ view joining COURSES and GRADES, projecting enough to
   identify both base tuples — Keller's setting for the same logical
   update omega expresses hierarchically. *)
let flat_course_view db =
  Keller.View.make_exn db ~name:"course_grades_flat"
    ~relations:[ "COURSES"; "GRADES" ]
    ~selection:Relational.Predicate.True
    ~projection:[ "course_id"; "title"; "units"; "level"; "pid"; "grade" ]

let mini_omega =
  (* COURSES + GRADES only: the hierarchical twin of the flat view. *)
  let tree =
    Viewobject.Generate.tree Metric.default Penguin.University.graph
      ~pivot:"COURSES"
  in
  match
    Viewobject.Generate.prune Penguin.University.graph tree ~name:"mini"
      ~keep:[ "COURSES", []; "GRADES", [ "pid"; "grade" ] ]
  with
  | Ok vo -> vo
  | Error e -> invalid_arg e

(* --- disjoint dependency islands: the E15 sharding workload ----------- *)

(* [islands] independent two-level ownership islands

     I<k>_PIV --* I<k>_SUB          (always)
     I<k>_PIV --* I<k>_REF, I<k>_TGT   and
     I<k>_REF --> I<(k+1) mod n>_TGT   (with [cross])

   Ownership keeps each island's four relations colocated on one shard;
   with [cross] the REF -> TGT reference stitches neighbouring islands,
   making exactly REF and TGT risky (their integrity footprint can read
   the neighbour shard) while PIV and SUB stay shard-local. Names are
   zero-padded so island k is shard k under the stable partition
   ordering. *)

let island_name k suffix = Fmt.str "I%02d_%s" k suffix

let islands_graph ?(cross = false) n =
  let piv k =
    Schema.make_exn ~name:(island_name k "PIV")
      ~attributes:[ Attribute.int "ida"; Attribute.str "val" ]
      ~key:[ "ida" ]
  in
  let sub k =
    Schema.make_exn ~name:(island_name k "SUB")
      ~attributes:
        [ Attribute.int "ida"; Attribute.int "idb"; Attribute.str "sval" ]
      ~key:[ "ida"; "idb" ]
  in
  let ref_ k =
    Schema.make_exn ~name:(island_name k "REF")
      ~attributes:
        [ Attribute.int "ida"; Attribute.int "idr"; Attribute.int "peer_a";
          Attribute.int "peer_t"; Attribute.str "note" ]
      ~key:[ "ida"; "idr" ]
  in
  let tgt k =
    Schema.make_exn ~name:(island_name k "TGT")
      ~attributes:
        [ Attribute.int "ida"; Attribute.int "idt"; Attribute.str "tval" ]
      ~key:[ "ida"; "idt" ]
  in
  let schemas =
    List.concat
      (List.init n (fun k ->
           if cross then [ piv k; sub k; ref_ k; tgt k ]
           else [ piv k; sub k ]))
  in
  let conns =
    List.concat
      (List.init n (fun k ->
           let own suffix =
             Connection.ownership (island_name k "PIV") (island_name k suffix)
               ~on:([ "ida" ], [ "ida" ])
           in
           if cross then
             [ own "SUB"; own "REF"; own "TGT";
               Connection.reference (island_name k "REF")
                 (island_name ((k + 1) mod n) "TGT")
                 ~on:([ "peer_a"; "peer_t" ], [ "ida"; "idt" ]) ]
           else [ own "SUB" ]))
  in
  Schema_graph.make_exn schemas conns

(* [rows] pivot tuples per island, [fanout] SUB children each; with
   [cross], one REF and one TGT row per island (REF 0 of island k points
   at TGT (0,0) of island k+1, which always exists). *)
let islands_db ?(cross = false) g ~islands ~rows ~fanout =
  let ins rel bindings db =
    match Database.insert db rel (Tuple.make bindings) with
    | Ok db -> db
    | Error e -> invalid_arg (Database.error_to_string e)
  in
  let island db k =
    let db =
      List.fold_left
        (fun db i ->
          let db =
            ins (island_name k "PIV")
              [ "ida", Value.Int i; "val", Value.Str "a" ]
              db
          in
          List.fold_left
            (fun db j ->
              ins (island_name k "SUB")
                [ "ida", Value.Int i; "idb", Value.Int j;
                  "sval", Value.Str (Fmt.str "s%d" j) ]
                db)
            db
            (List.init fanout Fun.id))
        db
        (List.init rows Fun.id)
    in
    if not cross then db
    else
      db
      |> ins (island_name k "TGT")
           [ "ida", Value.Int 0; "idt", Value.Int 0; "tval", Value.Str "t" ]
      |> ins (island_name k "REF")
           [ "ida", Value.Int 0; "idr", Value.Int 0; "peer_a", Value.Int 0;
             "peer_t", Value.Int 0; "note", Value.Str "n" ]
  in
  List.fold_left island (Schema_graph.create_database g)
    (List.init islands Fun.id)

(* A workspace over the islands with one hierarchical object per island
   ("isl<k>", pivot + SUB children) and, with [cross], one flat object
   per REF relation ("ref<k>") whose updates touch a risky relation. *)
let islands_workspace ?(cross = false) ~islands ~rows ~fanout () =
  let g = islands_graph ~cross islands in
  let db = islands_db ~cross g ~islands ~rows ~fanout in
  let ws = { (Penguin.Workspace.create g) with Penguin.Workspace.db } in
  let define ws ~name ~pivot ~keep =
    match Penguin.Workspace.define_object ws ~name ~pivot ~keep with
    | Ok ws -> ws
    | Error e -> invalid_arg e
  in
  List.fold_left
    (fun ws k ->
      let ws =
        define ws ~name:(Fmt.str "isl%d" k)
          ~pivot:(island_name k "PIV")
          ~keep:[ island_name k "PIV", []; island_name k "SUB", [] ]
      in
      if cross then
        define ws ~name:(Fmt.str "ref%d" k)
          ~pivot:(island_name k "REF")
          ~keep:[ island_name k "REF", [] ]
      else ws)
    ws
    (List.init islands Fun.id)

(* A forward/backward replacement pair on one object instance: both
   requests are pre-derived, so a client alternating fwd;back commits
   real edits every time and leaves the store as it found it after any
   even number of commits. *)
let flip_pair ws ~object_name ~label ~attr =
  let inst =
    match Penguin.Workspace.instances ws object_name with
    | Ok (i :: _) -> i
    | Ok [] -> invalid_arg (object_name ^ ": no instances")
    | Error e -> invalid_arg e
  in
  let flipped =
    match
      Vo_core.Request.modify_where inst ~label
        ~sel:(fun _ -> true)
        ~f:(fun t -> Tuple.set t attr (Value.Str "flip"))
    with
    | Ok i -> i
    | Error e -> invalid_arg e
  in
  ( Vo_core.Request.replace ~old_instance:inst ~new_instance:flipped,
    Vo_core.Request.replace ~old_instance:flipped ~new_instance:inst )
