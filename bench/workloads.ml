(* Synthetic workload generators for the benchmark harness (EXPERIMENTS.md).

   All generators are deterministic: benchmarks must measure the
   algorithms, not the random-number generator. *)

open Relational
open Structural
open Viewobject

(* Connection indexes are built with the database ({!Schema_graph}), so
   every generator below hands them out by default. Rebuilding each
   relation from its bare tuples sheds them — the honest baseline for
   the E4 index ablation. *)
let strip_indexes db =
  List.fold_left
    (fun acc name ->
      let r = Database.relation_exn db name in
      let acc = Database.create_relation_exn acc (Relation.schema r) in
      Relation.fold
        (fun t acc ->
          match Database.insert acc name t with
          | Ok acc -> acc
          | Error e -> invalid_arg (Database.error_to_string e))
        r acc)
    Database.empty (Database.relation_names db)

(* --- chain schemas: R0 --* R1 --* ... --* R(n-1) --------------------- *)

let chain_relation i =
  let key = List.init (i + 1) (fun j -> Fmt.str "id%d" j) in
  let attributes =
    List.map Attribute.int key @ [ Attribute.str (Fmt.str "payload%d" i) ]
  in
  Schema.make_exn ~name:(Fmt.str "R%d" i) ~attributes ~key

let chain_graph n =
  let schemas = List.init n chain_relation in
  let conns =
    List.init (n - 1) (fun i ->
        let shared = List.init (i + 1) (fun j -> Fmt.str "id%d" j) in
        Connection.ownership (Fmt.str "R%d" i)
          (Fmt.str "R%d" (i + 1))
          ~on:(shared, shared))
  in
  Schema_graph.make_exn schemas conns

(* Star schema: one pivot referencing [n] dimension relations — used for
   dialog-size and metric sweeps. *)
let star_graph n =
  let dim i =
    Schema.make_exn ~name:(Fmt.str "D%d" i)
      ~attributes:[ Attribute.int (Fmt.str "d%d" i); Attribute.str "label" ]
      ~key:[ Fmt.str "d%d" i ]
  in
  let pivot =
    Schema.make_exn ~name:"PIVOT"
      ~attributes:
        (Attribute.int "pk" :: List.init n (fun i -> Attribute.int (Fmt.str "d%d" i)))
      ~key:[ "pk" ]
  in
  let conns =
    List.init n (fun i ->
        Connection.reference "PIVOT" (Fmt.str "D%d" i)
          ~on:([ Fmt.str "d%d" i ], [ Fmt.str "d%d" i ]))
  in
  Schema_graph.make_exn (pivot :: List.init n dim) conns

(* Populate a chain graph with [fanout] children per tuple down to the
   last level; returns the database and the full object instance rooted
   at R0's single tuple. *)
let populate_chain g ~depth ~fanout =
  let db = Schema_graph.create_database g in
  let rec insert_level db level key_prefix =
    if level >= depth then db
    else
      let indices = if level = 0 then [ 0 ] else List.init fanout (fun i -> i) in
      List.fold_left
        (fun db i ->
          let key = key_prefix @ [ i ] in
          let bindings =
            List.mapi (fun j v -> Fmt.str "id%d" j, Value.Int v) key
            @ [ Fmt.str "payload%d" level, Value.Str (Fmt.str "p%d" i) ]
          in
          let db =
            match Database.insert db (Fmt.str "R%d" level) (Tuple.make bindings) with
            | Ok db -> db
            | Error e -> invalid_arg (Database.error_to_string e)
          in
          insert_level db (level + 1) key)
        db indices
  in
  insert_level db 0 []

let chain_object g =
  match
    Viewobject.Generate.full (Metric.make ~threshold:0.01 ()) g ~name:"chain"
      ~pivot:"R0"
  with
  | Ok vo -> vo
  | Error e -> invalid_arg e

let chain_instance db vo =
  match Instantiate.instantiate db vo with
  | [ i ] -> i
  | l -> invalid_arg (Fmt.str "chain_instance: %d instances" (List.length l))

(* --- university with synthetic enrollment -------------------------- *)

(* A university database where course BENCH1 has [g] enrolled students. *)
let enrollment_db g =
  let db = Penguin.University.seeded_db () in
  let db =
    match
      Database.insert db "COURSES"
        (Tuple.make
           [ "course_id", Value.Str "BENCH1"; "title", Value.Str "Bench";
             "units", Value.Int 3; "level", Value.Str "grad";
             "dept_name", Value.Str "Computer Science" ])
    with
    | Ok db -> db
    | Error e -> invalid_arg (Database.error_to_string e)
  in
  let rec add db i =
    if i > g then db
    else
      let pid = 1000 + i in
      let ins rel bindings db =
        match Database.insert db rel (Tuple.make bindings) with
        | Ok db -> db
        | Error e -> invalid_arg (Database.error_to_string e)
      in
      let db =
        db
        |> ins "PEOPLE"
             [ "pid", Value.Int pid; "name", Value.Str (Fmt.str "S%d" i);
               "dept_name", Value.Str "Computer Science" ]
        |> ins "STUDENT"
             [ "pid", Value.Int pid; "degree_program", Value.Str "MS CS";
               "year", Value.Int ((i mod 4) + 1) ]
        |> ins "GRADES"
             [ "course_id", Value.Str "BENCH1"; "pid", Value.Int pid;
               "grade", Value.Str "A" ]
      in
      add db (i + 1)
  in
  add db 1

(* A university database where [n] curriculum rows reference CS345 —
   peninsula fix-up scaling for VO-R. *)
let curriculum_db n =
  let db = Penguin.University.seeded_db () in
  let rec add db i =
    if i > n then db
    else
      match
        Database.insert db "CURRICULUM"
          (Tuple.make
             [ "degree", Value.Str (Fmt.str "DEG%d" i);
               "course_id", Value.Str "CS345";
               "requirement", Value.Str "elective" ])
      with
      | Ok db -> add db (i + 1)
      | Error e -> invalid_arg (Database.error_to_string e)
  in
  add db 1

let bench1_instance db =
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" "BENCH1")
      db Penguin.University.omega
  with
  | [ i ] -> i
  | _ -> invalid_arg "bench1_instance"

(* --- E10: group-commit workload ------------------------------------ *)

(* A university database with [n] extra one-student courses
   BENCH001..BENCH<n>: course [i] has student pid 2000+i enrolled with
   grade "A". Requests on distinct courses touch disjoint instances, so
   a batch of them can be served one-at-a-time against the evolving
   state or staged together from one snapshot. *)
let courses_db n =
  let db = Penguin.University.seeded_db () in
  let ins rel bindings db =
    match Database.insert db rel (Tuple.make bindings) with
    | Ok db -> db
    | Error e -> invalid_arg (Database.error_to_string e)
  in
  let rec add db i =
    if i > n then db
    else
      let course = Fmt.str "BENCH%03d" i in
      let pid = 2000 + i in
      db
      |> ins "COURSES"
           [ "course_id", Value.Str course; "title", Value.Str (Fmt.str "Bench %d" i);
             "units", Value.Int 3; "level", Value.Str "grad";
             "dept_name", Value.Str "Computer Science" ]
      |> ins "PEOPLE"
           [ "pid", Value.Int pid; "name", Value.Str (Fmt.str "S%d" i);
             "dept_name", Value.Str "Computer Science" ]
      |> ins "STUDENT"
           [ "pid", Value.Int pid; "degree_program", Value.Str "MS CS";
             "year", Value.Int ((i mod 4) + 1) ]
      |> ins "GRADES"
           [ "course_id", Value.Str course; "pid", Value.Int pid;
             "grade", Value.Str "A" ]
      |> fun db -> add db (i + 1)
  in
  add db 1

let course_instance db i =
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" (Fmt.str "BENCH%03d" i))
      db Penguin.University.omega
  with
  | [ inst ] -> inst
  | l -> invalid_arg (Fmt.str "course_instance %d: %d instances" i (List.length l))

(* One grade change on course [course] (re-reading the instance from
   [db], so the request is fresh against it); [tag] disambiguates the
   new grade so retried requests stay distinguishable. *)
let grade_change_request db ~course ~tag =
  let inst = course_instance db course in
  match
    Vo_core.Request.partial_modify inst ~label:"GRADES"
      ~at:(Tuple.make [ "pid", Value.Int (2000 + course) ])
      ~f:(fun t -> Tuple.set t "grade" (Value.Str (Fmt.str "B%d" tag)))
  with
  | Ok r -> r
  | Error e -> invalid_arg e

(* A batch of [n] grade changes, request [j] on course [j+1] — pairwise
   disjoint — except the first [colliding] requests, all redirected to
   course 1: those write the same GRADES key and conflict pairwise. *)
let grade_change_requests db ~n ~colliding =
  List.init n (fun j ->
      grade_change_request db
        ~course:(if j < colliding then 1 else j + 1)
        ~tag:j)

(* --- flat-view counterpart for the E8 baseline --------------------- *)

(* The flat SPJ view joining COURSES and GRADES, projecting enough to
   identify both base tuples — Keller's setting for the same logical
   update omega expresses hierarchically. *)
let flat_course_view db =
  Keller.View.make_exn db ~name:"course_grades_flat"
    ~relations:[ "COURSES"; "GRADES" ]
    ~selection:Relational.Predicate.True
    ~projection:[ "course_id"; "title"; "units"; "level"; "pid"; "grade" ]

let mini_omega =
  (* COURSES + GRADES only: the hierarchical twin of the flat view. *)
  let tree =
    Viewobject.Generate.tree Metric.default Penguin.University.graph
      ~pivot:"COURSES"
  in
  match
    Viewobject.Generate.prune Penguin.University.graph tree ~name:"mini"
      ~keep:[ "COURSES", []; "GRADES", [ "pid"; "grade" ] ]
  with
  | Ok vo -> vo
  | Error e -> invalid_arg e
